"""Service-level objectives evaluated over trace records.

The paper makes three service claims for a data-furnace city: edge requests
meet their deadlines (F3/E11), rooms stay in their comfort band (F3/E2), and
cloud batch work completes (F3).  This module turns those claims into
declarative :class:`SLOSpec` objects and evaluates them over the trace a run
emitted, SRE-style:

* every spec reduces matching records to a stream of ``(ts, value)``
  observations with ``value`` in ``[0, 1]`` (1 = the good outcome);
* compliance over a **rolling window of simulated time** is the mean
  observation value in that window; a window below target is a *breach* and
  its **burn rate** is the fraction of error budget it consumed
  (``(1 - compliance) / (1 - target)``, the Google SRE workbook definition);
* the whole-run compliance against the target yields the final verdict.

:meth:`SLOEngine.evaluate` optionally emits ``slo.burn_rate`` /
``slo.breach`` records back into a tracer so breaches land in the same
trace (and report) as the requests that caused them.

:data:`DEFAULT_SLOS` encodes the paper-table claims with thresholds the F3
reference run satisfies: edge deadline-miss ≤ 10 % (F3 observes 6.2 %),
comfort in-band ≥ 90 % (F3: 97 %), cloud completion 100 % (F3: 348/348),
fleet availability ≥ 95 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.trace import TraceRecord, Tracer

__all__ = ["SLOSpec", "SLOWindow", "SLOResult", "SLOReport", "SLOEngine",
           "DEFAULT_SLOS", "default_slos"]

#: burn rate reported when the target leaves zero error budget and a window
#: still has failures (division by zero budget)
_INF_BURN = float("inf")


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective over trace records.

    ``kind`` picks the reduction:

    * ``"event_ratio"`` — records named in ``good`` count 1 (or the boolean
      stored under their arg key), names in ``bad`` count 0; compliance is
      the good fraction.  Deadline-style objectives.
    * ``"sample_mean"`` — records named in ``good`` contribute the float in
      their arg key directly.  Gauge-style objectives (comfort, availability).
    * ``"completion"`` — names in ``good`` count completions, names in
      ``bad`` count admissions; compliance is ``completed/admitted`` over the
      whole run.  Windows are meaningless mid-run for this kind, so it is
      terminal regardless of ``window_s``.
    """

    name: str
    flow: str
    description: str
    target: float                       # required good-ratio, 0..1
    window_s: Optional[float] = 3600.0  # rolling window; None = whole run only
    kind: str = "event_ratio"
    good: Mapping[str, Optional[str]] = field(default_factory=dict)
    bad: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.target <= 1.0:
            raise ValueError(f"target must be in [0, 1], got {self.target}")
        if self.kind not in ("event_ratio", "sample_mean", "completion"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.window_s is not None and self.window_s <= 0:
            raise ValueError("window_s must be positive or None")

    # ------------------------------------------------------------------ #
    def observe(self, record: TraceRecord) -> Optional[float]:
        """This record's observation value, or None when it is irrelevant."""
        name = record.name
        if name in self.good:
            key = self.good[name]
            if key is None:
                return 1.0
            v = record.args.get(key)
            if v is None:
                return None
            return float(v) if self.kind == "sample_mean" else (1.0 if v else 0.0)
        if name in self.bad:
            return 0.0
        return None

    def burn_rate(self, compliance: float) -> float:
        """Error-budget burn of a window at ``compliance`` (1.0 = on budget)."""
        budget = 1.0 - self.target
        bad = 1.0 - compliance
        if budget <= 0.0:
            return 0.0 if bad <= 0.0 else _INF_BURN
        return bad / budget

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready spec: a client can display *and* re-evaluate it."""
        return {
            "name": self.name,
            "flow": self.flow,
            "description": self.description,
            "target": self.target,
            "window_s": self.window_s,
            "kind": self.kind,
            "good": dict(self.good),
            "bad": list(self.bad),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "SLOSpec":
        """Inverse of :meth:`to_dict`."""
        window = d.get("window_s", 3600.0)
        return cls(
            name=str(d["name"]),
            flow=str(d["flow"]),
            description=str(d["description"]),
            target=float(d["target"]),                 # type: ignore[arg-type]
            window_s=None if window is None else float(window),  # type: ignore[arg-type]
            kind=str(d.get("kind", "event_ratio")),
            good=dict(d.get("good", {})),              # type: ignore[arg-type]
            bad=tuple(d.get("bad", ())),               # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class SLOWindow:
    """Compliance of one rolling window of simulated time."""

    start_ts: float
    end_ts: float
    compliance: float
    burn_rate: float
    samples: int

    @property
    def breached(self) -> bool:
        """True when this window burned more than its share of budget."""
        return self.burn_rate > 1.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready window row."""
        return {"start": self.start_ts, "end": self.end_ts,
                "compliance": self.compliance, "burn_rate": self.burn_rate,
                "samples": self.samples, "breached": self.breached}

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "SLOWindow":
        """Inverse of :meth:`to_dict` (``breached`` is derived, not stored)."""
        return cls(start_ts=float(d["start"]), end_ts=float(d["end"]),      # type: ignore[arg-type]
                   compliance=float(d["compliance"]),                       # type: ignore[arg-type]
                   burn_rate=float(d["burn_rate"]),                         # type: ignore[arg-type]
                   samples=int(d["samples"]))                               # type: ignore[arg-type]


@dataclass
class SLOResult:
    """One spec's verdict over a whole run."""

    spec: SLOSpec
    compliance: float          # whole-run good ratio (nan when no data)
    samples: int
    windows: List[SLOWindow] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whole-run verdict; vacuously true with no observations."""
        if self.samples == 0:
            return True
        return self.compliance >= self.spec.target - 1e-12

    @property
    def breaches(self) -> int:
        """Number of breached windows."""
        return sum(1 for w in self.windows if w.breached)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (windows and the full spec included).

        Stable serialisation contract (tested round-trip): the flat
        name/flow/target fields stay for existing consumers, ``spec`` makes
        the result self-describing, and :meth:`from_dict` reconstructs an
        equal result — the service layer's clients consume this instead of
        scraping :meth:`SLOReport.render` output.
        """
        return {
            "name": self.spec.name,
            "flow": self.spec.flow,
            "description": self.spec.description,
            "target": self.spec.target,
            "spec": self.spec.to_dict(),
            "compliance": self.compliance,
            "samples": self.samples,
            "ok": self.ok,
            "breaches": self.breaches,
            "windows": [w.to_dict() for w in self.windows],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "SLOResult":
        """Inverse of :meth:`to_dict` (``ok``/``breaches`` are derived)."""
        return cls(
            spec=SLOSpec.from_dict(d["spec"]),                    # type: ignore[arg-type]
            compliance=float(d["compliance"]),                    # type: ignore[arg-type]
            samples=int(d["samples"]),                            # type: ignore[arg-type]
            windows=[SLOWindow.from_dict(w) for w in d.get("windows", ())],  # type: ignore[union-attr]
        )


class SLOReport:
    """All specs' verdicts; renders the final compliance table."""

    def __init__(self, results: List[SLOResult]):
        self.results = results

    @property
    def ok(self) -> bool:
        """True when every objective holds."""
        return all(r.ok for r in self.results)

    def __iter__(self):
        return iter(self.results)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready report."""
        return {"ok": self.ok, "slos": [r.to_dict() for r in self.results]}

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "SLOReport":
        """Inverse of :meth:`to_dict`; ``ok`` is re-derived from the rows."""
        return cls([SLOResult.from_dict(r) for r in d.get("slos", ())])  # type: ignore[union-attr]

    def render(self) -> str:
        """The final compliance table, one row per objective."""
        headers = ("slo", "flow", "target", "observed", "windows", "breaches",
                   "verdict")
        rows = [headers]
        for r in self.results:
            obs = "-" if r.samples == 0 else f"{r.compliance:.2%}"
            rows.append((r.spec.name, r.spec.flow, f"{r.spec.target:.0%}",
                         obs, str(len(r.windows)), str(r.breaches),
                         "PASS" if r.ok else "FAIL"))
        widths = [max(len(row[i]) for row in rows) for i in range(len(headers))]
        lines = ["  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
                 for row in rows]
        lines.insert(1, "  ".join("-" * w for w in widths))
        return "\n".join(lines)


class SLOEngine:
    """Evaluates a set of :class:`SLOSpec` over a run's trace records."""

    def __init__(self, specs: Optional[Iterable[SLOSpec]] = None):
        self.specs = list(specs) if specs is not None else default_slos()
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names in {names}")

    def evaluate(self, records: Iterable[TraceRecord],
                 tracer: Optional[Tracer] = None) -> SLOReport:
        """Reduce ``records`` to per-spec verdicts.

        With ``tracer``, every closed window appends one ``slo.burn_rate``
        record (plus ``slo.breach`` when it overspent), timestamped at the
        window's end in simulated time.
        """
        obs: Dict[str, List[Tuple[float, float]]] = {s.name: [] for s in self.specs}
        for rec in records:
            for spec in self.specs:
                v = spec.observe(rec)
                if v is not None:
                    obs[spec.name].append((rec.ts, v))

        results: List[SLOResult] = []
        for spec in self.specs:
            points = obs[spec.name]
            points.sort(key=lambda p: p[0])
            if spec.kind == "completion":
                num = sum(1 for _, v in points if v > 0)   # completions
                den = sum(1 for _, v in points if v <= 0)  # admissions
                compliance = num / den if den else float("nan")
                results.append(SLOResult(spec, compliance, den))
                continue
            compliance = (sum(v for _, v in points) / len(points)
                          if points else float("nan"))
            windows: List[SLOWindow] = []
            if spec.window_s is not None and points:
                w = spec.window_s
                idx = None
                acc: List[float] = []
                lo = 0.0
                for ts, v in points:
                    i = int(ts // w)
                    if i != idx:
                        if idx is not None:
                            windows.append(self._close(spec, lo, lo + w, acc))
                        idx, lo, acc = i, i * w, []
                    acc.append(v)
                windows.append(self._close(spec, lo, lo + spec.window_s, acc))
            results.append(SLOResult(spec, compliance, len(points), windows))

        if tracer is not None and tracer.enabled:
            for r in results:
                for w in r.windows:
                    tracer.emit("slo", "slo.burn_rate", w.end_ts,
                                slo=r.spec.name, window_start=w.start_ts,
                                compliance=w.compliance,
                                burn_rate=w.burn_rate, samples=w.samples)
                    if w.breached:
                        tracer.emit("slo", "slo.breach", w.end_ts,
                                    slo=r.spec.name, window_start=w.start_ts,
                                    compliance=w.compliance,
                                    burn_rate=w.burn_rate,
                                    target=r.spec.target)
        return SLOReport(results)

    @staticmethod
    def _close(spec: SLOSpec, lo: float, hi: float,
               acc: List[float]) -> SLOWindow:
        compliance = sum(acc) / len(acc)
        return SLOWindow(lo, hi, compliance, spec.burn_rate(compliance),
                         len(acc))


def default_slos() -> List[SLOSpec]:
    """The paper-table objectives (fresh instances; see module docstring)."""
    return [
        SLOSpec(
            name="edge-deadline", flow="edge",
            description="edge requests served within deadline",
            target=0.90, window_s=3600.0, kind="event_ratio",
            good={"edge.completed": "ok"},
            bad=("edge.expired", "edge.rejected"),
        ),
        SLOSpec(
            name="cloud-completion", flow="cloud",
            description="accepted cloud jobs complete by end of run",
            target=1.0, window_s=None, kind="completion",
            good={"cloud.completed": None},
            bad=("cloud.received",),
        ),
        SLOSpec(
            name="comfort-band", flow="heating",
            description="rooms within the comfort band of their setpoint",
            target=0.90, window_s=3600.0, kind="sample_mean",
            good={"comfort.sample": "in_band"},
        ),
        SLOSpec(
            name="fleet-availability", flow="heating",
            description="DF servers up (powered and unfailed)",
            target=0.95, window_s=3600.0, kind="sample_mean",
            good={"fleet.sample": "up"},
        ),
    ]


#: evaluated lazily so tests mutating one spec never leak into another run
DEFAULT_SLOS: Tuple[SLOSpec, ...] = tuple(default_slos())
