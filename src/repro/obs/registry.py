"""Process-wide metrics registry: named counters, gauges and histograms.

The registry is the numeric companion of the tracer: where a trace answers
"what happened, in order", a metrics snapshot answers "how much, how often".
Metrics are identified by a name plus a label set (``requests_admitted``
with ``flow=edge, cluster=district-0``), so per-flow and per-district series
coexist under one name.

Snapshots are plain nested dicts keyed by the rendered series name
(``requests_admitted{cluster=district-0,flow=edge}``), which makes them
JSON-exportable via :func:`repro.metrics.export.metrics_to_json` and
diffable with :meth:`MetricsRegistry.diff`.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _series_name(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: increment must be >= 0")
        self.value += amount

    def snapshot(self) -> float:
        """Current value."""
        return self.value


class Gauge:
    """A value that goes up and down (free cores, room temperature, …)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        self.value += amount

    def snapshot(self) -> float:
        """Current value."""
        return self.value


class Histogram:
    """A distribution of observed values (service times, queue waits, …).

    Observations are retained, which is fine at simulation scale (runs are
    finite and short); the snapshot reduces to count/sum/min/max/mean and
    the 50th/95th/99th percentiles.
    """

    __slots__ = ("name", "labels", "_values")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(float(value))

    @property
    def count(self) -> int:
        """Number of observations so far."""
        return len(self._values)

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile of the observations."""
        if not self._values:
            raise ValueError(f"histogram {self.name}: no observations")
        if not 0 <= q <= 100:
            raise ValueError(f"q must be in [0, 100], got {q}")
        vs = sorted(self._values)
        pos = (len(vs) - 1) * q / 100.0
        lo = int(pos)
        hi = min(lo + 1, len(vs) - 1)
        return vs[lo] + (vs[hi] - vs[lo]) * (pos - lo)

    def snapshot(self) -> Dict[str, float]:
        """Reduced view of the distribution.

        Computed over one atomic copy of the observations, so a snapshot
        taken while another thread keeps observing (the service layer's
        telemetry loop vs. the engine thread) is internally consistent —
        ``count``, ``sum`` and the percentiles all describe the same set.
        """
        vs = self._values[:]  # list copy is atomic under the GIL
        if not vs:
            return {"count": 0, "sum": 0.0}
        n = len(vs)
        total = sum(vs)       # emit order, as the percentile-free fields always were
        ordered = sorted(vs)

        def pct(q: float) -> float:
            pos = (n - 1) * q / 100.0
            lo = int(pos)
            hi = min(lo + 1, n - 1)
            return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)

        return {
            "count": n,
            "sum": total,
            "min": ordered[0],
            "max": ordered[-1],
            "mean": total / n,
            "p50": pct(50),
            "p95": pct(95),
            "p99": pct(99),
        }


class MetricsRegistry:
    """Get-or-create home of all metric series in one run.

    One registry per instrumented run; the CLI creates a fresh one per
    experiment so snapshots never bleed across runs.
    """

    def __init__(self) -> None:
        self._metrics: Dict[LabelKey, object] = {}
        # guards the series *dict* against concurrent registration vs.
        # snapshot iteration (engine thread vs. service telemetry thread);
        # individual metric mutations stay lock-free — they are single
        # attribute/list operations, atomic under the GIL
        self._lock = threading.Lock()

    def __getstate__(self) -> Dict[str, Any]:
        # registries cross process boundaries (sweep-worker merge-back);
        # locks don't pickle and each process wants its own anyway
        return {"_metrics": self._metrics}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self._metrics = state["_metrics"]
        self._lock = threading.Lock()

    def _get(self, cls, name: str, labels: Dict[str, Any]):
        key: LabelKey = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(key, cls(name, key[1]))
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"not {cls.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get or create the counter for ``name`` + ``labels``."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get or create the gauge for ``name`` + ``labels``."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """Get or create the histogram for ``name`` + ``labels``."""
        return self._get(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._metrics)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (worker → parent merge-back).

        Counters add, histograms concatenate their observations, gauges take
        the other registry's value (a worker's gauge is the more recent
        observation of the same instrument).  Series are merged in sorted
        key order so repeated merges are deterministic.
        """
        with other._lock:
            items = list(other._metrics.items())
        for (name, labels), metric in sorted(items):
            kwargs = dict(labels)
            if isinstance(metric, Counter):
                self.counter(name, **kwargs).inc(metric.value)
            elif isinstance(metric, Gauge):
                self.gauge(name, **kwargs).set(metric.value)
            elif isinstance(metric, Histogram):
                mine = self.histogram(name, **kwargs)
                mine._values.extend(metric._values)

    def clear(self) -> None:
        """Drop every registered series."""
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> Dict[str, Any]:
        """Rendered-name → value (scalar, or dict for histograms).

        Copy-on-snapshot: the series list is copied under the registry lock,
        so a snapshot taken from the service thread never races a
        registration on the engine thread (dict-changed-size errors), and
        each metric reduces over its own atomic copy.
        """
        with self._lock:
            items = list(self._metrics.items())
        return {
            _series_name(name, labels): metric.snapshot()
            for (name, labels), metric in sorted(items)
        }

    @staticmethod
    def diff(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
        """Numeric delta of two snapshots (series missing before count from 0).

        Histogram entries diff per-field on ``count`` and ``sum`` (order
        statistics do not subtract meaningfully and are dropped).
        """
        out: Dict[str, Any] = {}
        for key, new in after.items():
            old = before.get(key)
            if isinstance(new, dict):
                base = old if isinstance(old, dict) else {}
                out[key] = {
                    f: new.get(f, 0) - base.get(f, 0) for f in ("count", "sum")
                }
            else:
                out[key] = new - (old if isinstance(old, (int, float)) else 0)
        return out
