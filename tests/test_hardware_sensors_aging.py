"""Tests for the sensor suite and the aging model."""

import numpy as np
import pytest

from repro.hardware.aging import AgingModel, AgingTracker
from repro.hardware.sensors import Sensor, SensorKind, SensorSuite
from repro.sim.rng import RngRegistry


def rng():
    return RngRegistry(0).stream("sensors")


# --------------------------------------------------------------------------- #
# sensors
# --------------------------------------------------------------------------- #
def test_noiseless_sensor_returns_truth():
    s = Sensor("t", SensorKind.TEMPERATURE, lambda t: 21.5, rng())
    r = s.sample(10.0)
    assert r.value == 21.5
    assert r.time == 10.0
    assert r.kind is SensorKind.TEMPERATURE
    assert s.samples_taken == 1


def test_noise_added():
    s = Sensor("t", SensorKind.TEMPERATURE, lambda t: 20.0, rng(), noise_std=0.5)
    vals = [s.sample(0.0).value for _ in range(200)]
    assert np.std(vals) > 0.2
    assert abs(np.mean(vals) - 20.0) < 0.2


def test_quantisation():
    s = Sensor("t", SensorKind.TEMPERATURE, lambda t: 20.37, rng(), resolution=0.5)
    assert s.sample(0.0).value == pytest.approx(20.5)


def test_invalid_sensor_params():
    with pytest.raises(ValueError):
        Sensor("t", SensorKind.TEMPERATURE, lambda t: 0.0, rng(), noise_std=-1.0)


def test_suite_standard_panel():
    suite = SensorSuite.standard(rng(), room_temperature=lambda t: 21.0)
    assert len(suite) == 6
    assert "temp" in suite
    readings = suite.sample_all(12 * 3600.0)
    assert len(readings) == 6
    by_name = {r.sensor: r for r in readings}
    assert abs(by_name["temp"].value - 21.0) < 1.5
    assert by_name["presence"].value in (0.0, 1.0)


def test_suite_duplicate_names_rejected():
    s1 = Sensor("x", SensorKind.LIGHT, lambda t: 0.0, rng())
    s2 = Sensor("x", SensorKind.NOISE, lambda t: 0.0, rng())
    with pytest.raises(ValueError):
        SensorSuite([s1, s2])


def test_suite_lookup():
    suite = SensorSuite.standard(rng(), room_temperature=lambda t: 20.0)
    assert suite.sensor("hum").kind is SensorKind.HUMIDITY
    with pytest.raises(KeyError):
        suite.sensor("nope")


# --------------------------------------------------------------------------- #
# aging
# --------------------------------------------------------------------------- #
def test_af_is_one_at_reference():
    m = AgingModel(t_ref_c=60.0)
    assert m.acceleration_factor(60.0) == pytest.approx(1.0)


def test_af_monotone_in_temperature():
    m = AgingModel()
    assert m.acceleration_factor(80.0) > m.acceleration_factor(60.0) > m.acceleration_factor(40.0)
    assert m.acceleration_factor(40.0) < 1.0


def test_af_vectorised():
    m = AgingModel()
    out = m.acceleration_factor(np.array([40.0, 60.0, 80.0]))
    assert out.shape == (3,)
    assert out[1] == pytest.approx(1.0)


def test_junction_temperature_model():
    m = AgingModel()
    tj_idle = m.junction_temperature_c(20.0, 0.0)
    tj_full = m.junction_temperature_c(20.0, 1.0, theta_ja_c=35.0)
    assert tj_idle == pytest.approx(20.0)
    assert tj_full == pytest.approx(55.0)


def test_tracker_lifetime_projection():
    m = AgingModel(t_ref_c=60.0, base_lifetime_hours=10 * 365 * 24)
    tr = AgingTracker(m)
    tr.add(3600.0, 60.0)
    assert tr.mean_acceleration == pytest.approx(1.0)
    assert tr.expected_lifetime_years() == pytest.approx(10.0)


def test_hotter_duty_shortens_life():
    hot, cool = AgingTracker(), AgingTracker()
    for _ in range(100):
        hot.add(3600.0, 85.0)
        cool.add(3600.0, 50.0)
    assert hot.expected_lifetime_years() < cool.expected_lifetime_years()
    assert hot.consumed_life_fraction() > cool.consumed_life_fraction()


def test_tracker_validation():
    with pytest.raises(ValueError):
        AgingTracker().add(0.0, 50.0)
    with pytest.raises(ValueError):
        AgingModel(activation_energy_ev=0.0)
    with pytest.raises(ValueError):
        AgingModel(base_lifetime_hours=0.0)


def test_empty_tracker_degenerate():
    tr = AgingTracker()
    assert tr.mean_acceleration == 0.0
    assert tr.expected_lifetime_years() == float("inf")
