"""Worker initialization: explicit, fork-safe, observable.

The sweep runner forks/execs worker processes; anything mutable created at
module import time would silently diverge between parent and workers.  These
tests pin the three defences: ``init_worker`` resets process-global state,
the experiment plumbing module keeps no mutable singletons, and per-worker
observability is collected in a fresh bundle and merged back to the parent.
"""

from __future__ import annotations

import pytest

import repro.experiments.common as common
from repro import obs as obs_mod
from repro.runner import SweepRunner
from repro.runner.spec import SweepPoint, SweepSpec
from repro.runner.worker import init_worker, run_point_task
from repro.sim.calendar import SimCalendar


# module-level cells so they pickle by reference into pool workers
def _obs_probe_cell(tag: str) -> dict:
    obs = obs_mod.get_obs()
    obs.counter("probe_cells").inc()
    obs.histogram("probe_values").observe(float(len(tag)))
    return {"tag": tag, "parent_obs_active": obs.active}


def _plain_cell(x: int) -> int:
    return x * x


def _probe_points(n: int = 3):
    return [SweepPoint("WX", f"p{i}", "tests.test_runner_worker:_obs_probe_cell",
                       params=(("tag", f"tag{i}"),)) for i in range(n)]


def _probe_reduce(cells, n: int = 3):
    return [cells[f"p{i}"] for i in range(n)]


PROBE_SWEEP = SweepSpec("WX", points=_probe_points, reduce=_probe_reduce)


# --------------------------------------------------------------------------- #
def test_init_worker_resets_observability():
    active = obs_mod.Observability(registry=obs_mod.MetricsRegistry())
    previous = obs_mod.install(active)
    try:
        assert obs_mod.get_obs() is active
        init_worker()
        assert obs_mod.get_obs() is obs_mod.OBS_OFF
        assert not obs_mod.get_obs().active
    finally:
        obs_mod.install(previous)


def test_common_module_keeps_no_singletons():
    """No instance state at module level — every worker import is identical.

    (The old module-level ``_CAL = SimCalendar()`` was the benign version of
    this hazard; a mutable one would fork into silently divergent copies.)
    """
    for name, value in vars(common).items():
        if name.startswith("__"):
            continue
        assert not isinstance(value, (SimCalendar, dict, list, set)), (
            f"module-level instance {name!r} would be re-created per worker"
        )


def test_run_point_task_without_obs_returns_no_merge_material():
    point = SweepPoint("WX", "p", "tests.test_runner_worker:_plain_cell",
                       params=(("x", 7),))
    point_id, value, registry, profiler, records = run_point_task(
        point, want_metrics=False, want_profile=False)
    assert (point_id, value, registry, profiler, records) == (
        "p", 49, None, None, None)


def test_run_point_task_collects_fresh_bundle():
    point = SweepPoint("WX", "p", "tests.test_runner_worker:_obs_probe_cell",
                       params=(("tag", "abc"),))
    point_id, value, registry, profiler, records = run_point_task(
        point, want_metrics=True, want_profile=False)
    assert value["parent_obs_active"] is True  # the cell saw the task bundle
    assert registry is not None and profiler is None and records is None
    assert registry.counter("probe_cells").value == 1
    # and the task bundle was uninstalled afterwards
    assert not obs_mod.get_obs().active


def test_worker_processes_start_with_inactive_obs():
    """A pool worker never inherits the parent's installed bundle."""
    parent_bundle = obs_mod.Observability(registry=obs_mod.MetricsRegistry())
    previous = obs_mod.install(parent_bundle)
    try:
        report = SweepRunner(jobs=2, obs=obs_mod.OBS_OFF).run_spec(PROBE_SWEEP)
    finally:
        obs_mod.install(previous)
    # obs=OBS_OFF → workers asked for nothing → cells saw the inactive bundle
    assert [c["parent_obs_active"] for c in report.result] == [False] * 3


def test_parallel_metrics_and_profile_merge_back():
    bundle = obs_mod.Observability(registry=obs_mod.MetricsRegistry(),
                                   profiler=obs_mod.Profiler())
    report = SweepRunner(jobs=2, obs=bundle).run_spec(PROBE_SWEEP, n=4)
    assert report.computed == 4
    assert bundle.registry.counter("probe_cells").value == 4
    hist = bundle.registry.histogram("probe_values")
    assert hist.count == 4
    # merge is deterministic: a second identical run doubles the counter
    SweepRunner(jobs=2, obs=bundle).run_spec(PROBE_SWEEP, n=4)
    assert bundle.registry.counter("probe_cells").value == 8


def test_serial_path_uses_ambient_bundle():
    bundle = obs_mod.Observability(registry=obs_mod.MetricsRegistry())
    with obs_mod.obs_session(bundle):
        report = SweepRunner(jobs=1).run_spec(PROBE_SWEEP)
    assert bundle.registry.counter("probe_cells").value == 3
    assert all(c["parent_obs_active"] for c in report.result)


def test_sweep_point_validation():
    with pytest.raises(ValueError, match="module:function"):
        SweepPoint("X", "p", "not-a-ref")
    with pytest.raises(ValueError, match="duplicate point id"):
        SweepSpec("WX", points=lambda: [_probe_points(1)[0]] * 2,
                  reduce=lambda cells: cells).make_points()
    with pytest.raises(ValueError, match="belongs to"):
        SweepSpec("OTHER", points=_probe_points,
                  reduce=lambda cells: cells).make_points()
