"""Tests for NHPP sampling and diurnal profiles."""

import numpy as np
import pytest

from repro.sim.calendar import DAY, HOUR
from repro.sim.rng import RngRegistry
from repro.workloads.arrivals import DiurnalProfile, sample_nhpp


def rng(seed=0):
    return RngRegistry(seed).stream("arrivals")


def test_homogeneous_rate_count():
    """Constant-rate NHPP matches the Poisson mean within 5 sigma."""
    lam = 0.01
    arr = sample_nhpp(rng(), lambda t: lam, lam, 0.0, 1e6)
    expected = lam * 1e6
    assert abs(len(arr) - expected) < 5 * np.sqrt(expected)


def test_arrivals_sorted_and_in_window():
    arr = sample_nhpp(rng(), lambda t: 0.01, 0.01, 100.0, 5000.0)
    assert arr == sorted(arr)
    assert all(100.0 <= t < 5000.0 for t in arr)


def test_zero_rate_produces_nothing():
    arr = sample_nhpp(rng(), lambda t: 0.0, 1.0, 0.0, 1e5)
    assert arr == []


def test_rate_exceeding_max_raises():
    with pytest.raises(ValueError):
        sample_nhpp(rng(), lambda t: 2.0, 1.0, 0.0, 1e5)


def test_invalid_window_raises():
    with pytest.raises(ValueError):
        sample_nhpp(rng(), lambda t: 1.0, 1.0, 10.0, 0.0)
    with pytest.raises(ValueError):
        sample_nhpp(rng(), lambda t: 1.0, 0.0, 0.0, 10.0)


def test_thinning_respects_shape():
    """A two-level rate yields ~the right ratio of arrivals per level."""
    def rate(t):
        return 0.02 if (t % 1000.0) < 500.0 else 0.002

    arr = np.array(sample_nhpp(rng(1), rate, 0.02, 0.0, 1e6))
    high = np.sum((arr % 1000.0) < 500.0)
    low = len(arr) - high
    assert high > 5 * low


def test_profile_validation():
    with pytest.raises(ValueError):
        DiurnalProfile(-1.0)
    with pytest.raises(ValueError):
        DiurnalProfile(1.0, hour_weights=(1.0,) * 23)
    with pytest.raises(ValueError):
        DiurnalProfile(1.0, seasonal_amplitude=1.5)


def test_office_hours_shape():
    p = DiurnalProfile.office_hours(1.0)
    monday_noon = 12 * HOUR
    monday_3am = 3 * HOUR
    saturday_noon = 5 * DAY + 12 * HOUR
    assert p.rate(monday_noon) > 3 * p.rate(monday_3am)
    assert p.rate(saturday_noon) < p.rate(monday_noon)


def test_home_evenings_shape():
    p = DiurnalProfile.home_evenings(1.0)
    evening = 20 * HOUR
    night = 3 * HOUR
    assert p.rate(evening) > 5 * p.rate(night)


def test_rate_max_majorises():
    for p in (DiurnalProfile.office_hours(2.0), DiurnalProfile.home_evenings(2.0)):
        rmax = p.rate_max()
        ts = np.arange(0, 365 * DAY, 3571.0)
        rates = np.array([p.rate(float(t)) for t in ts])
        assert np.all(rates <= rmax + 1e-9)


def test_profile_mean_rate_close_to_base():
    """Normalised hour weights keep the weekday mean near base_rate."""
    p = DiurnalProfile(1.0, hour_weights=tuple(range(1, 25)))
    week_ts = np.arange(0, 5 * DAY, 600.0)  # Mon-Fri
    mean = np.mean([p.rate(float(t)) for t in week_ts])
    assert mean == pytest.approx(1.0, rel=0.05)


def test_profile_sampling_end_to_end():
    p = DiurnalProfile.home_evenings(100.0 / 3600.0)
    arr = p.sample(rng(2), 0.0, 7 * DAY)
    # ~100/h base over a week, modulated: sanity band
    assert 5000 < len(arr) < 30000
