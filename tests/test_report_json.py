"""RunReport JSON export and the ``repro diff`` perf-regression radar.

Two halves of the same acceptance criterion: ``repro run --report-json``
persists everything a later session needs to compare against (including
``result_digest`` and the backend's wall-clock telemetry), and ``repro
diff`` classifies the comparison — two identical runs report zero
regressions, a perturbed run is flagged, scheduling detail is
informational, and undersized-box sentinels neither pass nor fail.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments import e14_scale
from repro.obs.diff import (
    classify_key,
    diff_artifacts,
    diff_files,
    load_artifact,
)
from repro.runner import RunReport, SweepRunner


# --------------------------------------------------------------------------- #
# RunReport.to_dict / from_dict
# --------------------------------------------------------------------------- #
def test_run_report_round_trips_through_dict():
    report = SweepRunner(jobs=1, backend="dag").run_spec(e14_scale.SWEEP)
    d = report.to_dict()
    assert d["experiment"] == "E14"
    assert d["backend"] == "dag"
    assert d["jobs"] == 1
    assert d["points"] == report.points
    assert d["computed_nodes"] == report.computed_nodes
    assert d["fully_cached"] is False
    assert d["wall_s"] > 0.0
    # digest of the rendered result text: the diffable outcome fingerprint
    assert len(d["result_digest"]) == 64
    assert set(d["result_digest"]) <= set("0123456789abcdef")
    assert d["backend_stats"]["executed"] == report.computed_nodes
    restored = RunReport.from_dict(d)
    assert restored.result is None           # the result does not round-trip
    assert restored.to_dict() == d


def test_result_digest_is_deterministic():
    d1 = SweepRunner(jobs=1).run_spec(e14_scale.SWEEP).to_dict()
    d2 = SweepRunner(jobs=2).run_spec(e14_scale.SWEEP).to_dict()
    assert d1["result_digest"] == d2["result_digest"]


def test_cli_run_report_json(tmp_path, capsys):
    out = tmp_path / "e14.json"
    assert main(["run", "E14", "--no-cache", "--jobs", "2",
                 "--report-json", str(out)]) == 0
    capsys.readouterr()
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert payload["experiment"] == "E14"
    assert payload["jobs"] == 2
    assert payload["computed"] == payload["points"] > 0
    assert payload["backend_stats"] is not None
    timeline = payload["backend_stats"]["timeline"]
    assert len(timeline) == payload["computed_nodes"]
    assert {"node", "kind", "worker", "attempts", "wall_s"} <= set(timeline[0])


# --------------------------------------------------------------------------- #
# diff classification
# --------------------------------------------------------------------------- #
def test_classify_key():
    assert classify_key("serial_s") == "lower_better"
    assert classify_key("inject_rtt_ms_p50") == "lower_better"
    assert classify_key("steady_state_rss_mib") == "lower_better"
    assert classify_key("heartbeat_max_staleness_s") == "lower_better"
    assert classify_key("parallel_speedup") == "higher_better"
    assert classify_key("sse_events_per_s") == "higher_better"
    assert classify_key("points") == "exact"
    assert classify_key("result_digest") == "exact"
    assert classify_key("served_in_deadline_rate") == "exact"


def test_identical_artifacts_report_zero_regressions():
    doc = {"points": 3, "wall_s": 1.5, "result_digest": "ab" * 32,
           "backend_stats": {"chunk_steals": 4, "executed": 5}}
    report = diff_artifacts(doc, json.loads(json.dumps(doc)))
    assert report.ok
    assert report.regressions == []
    assert all(e.status == "ok" for e in report.entries)


def test_exact_key_change_is_a_regression_at_any_delta():
    report = diff_artifacts({"result_digest": "aa", "points": 3},
                            {"result_digest": "bb", "points": 3})
    assert not report.ok
    assert [e.path for e in report.regressions] == ["result_digest"]


def test_timing_band_and_absolute_floor():
    base = {"wall_s": 10.0, "warm_s": 0.1}
    # +10% on a 10s timing: inside the ±20% band → ok
    assert diff_artifacts(base, {"wall_s": 11.0, "warm_s": 0.1}).ok
    # +50% and > abs floor → regression
    worse = diff_artifacts(base, {"wall_s": 15.0, "warm_s": 0.1})
    assert [e.path for e in worse.regressions] == ["wall_s"]
    assert worse.regressions[0].kind == "lower_better"
    # 0.1s → 0.3s is 200% worse but under the 0.25s floor: jitter, ok
    assert diff_artifacts(base, {"wall_s": 10.0, "warm_s": 0.3}).ok
    # big speedup drop is a regression on a higher-better key
    slower = diff_artifacts({"speedup": 3.0}, {"speedup": 1.5})
    assert [e.path for e in slower.regressions] == ["speedup"]
    # big improvement is reported, not flagged
    faster = diff_artifacts(base, {"wall_s": 5.0, "warm_s": 0.1})
    assert faster.ok
    assert [e.path for e in faster.improvements] == ["wall_s"]


def test_scheduling_detail_is_info_never_regression():
    base = {"backend_stats": {"chunk_steals": 4, "queue_depth_peak": 2,
                              "nodes_per_worker": {"0": 3, "1": 2},
                              "last_heartbeat": {"0": 100.0},
                              "timeline": [{"node": "a", "worker": 0,
                                            "attempts": 1}]}}
    cand = {"backend_stats": {"chunk_steals": 9, "queue_depth_peak": 5,
                              "nodes_per_worker": {"0": 5},
                              "last_heartbeat": {"0": 200.0, "1": 201.0},
                              "timeline": [{"node": "a", "worker": 1,
                                            "attempts": 2}]}}
    report = diff_artifacts(base, cand)
    assert report.ok
    statuses = {e.status for e in report.entries if e.status != "ok"}
    assert statuses <= {"info", "added", "missing"}


def test_sentinel_skips_instead_of_failing():
    base = {"parallel_speedup": 2.5}
    cand = {"parallel_speedup": "skipped_insufficient_cores"}
    report = diff_artifacts(base, cand)
    assert report.ok
    assert [e.path for e in report.skipped] == ["parallel_speedup"]


def test_cpu_count_mismatch_downgrades_timings_to_skipped():
    base = {"cpu_count": 16, "wall_s": 1.0, "points": 3}
    cand = {"cpu_count": 2, "wall_s": 9.0, "points": 4}
    report = diff_artifacts(base, cand)
    # the 9x slowdown is not comparable across boxes → skipped…
    assert "wall_s" in [e.path for e in report.skipped]
    # …but outcome drift still counts
    assert [e.path for e in report.regressions] == ["points"]


def test_missing_keys():
    report = diff_artifacts({"points": 3, "wall_s": 1.0, "extra_s": 2.0},
                            {"points": 3, "wall_s": 1.0})
    # dropped perf key is "missing" (non-failing); dropped exact key fails
    assert report.ok
    missing = {e.path: e.status for e in report.entries
               if e.status != "ok"}
    assert missing == {"extra_s": "missing"}
    gone = diff_artifacts({"points": 3}, {})
    assert [e.path for e in gone.regressions] == ["points"]


def test_provenance_keys_are_ignored():
    report = diff_artifacts({"commit": "abc", "generated_at": "x", "n": 1},
                            {"commit": "def", "generated_at": "y", "n": 1})
    assert report.ok
    assert all(e.path == "n" for e in report.entries)


def test_diff_render_is_deterministic():
    base = {"wall_s": 1.0, "points": 3}
    cand = {"wall_s": 9.0, "points": 4}
    r1 = diff_artifacts(base, cand).render()
    r2 = diff_artifacts(base, cand).render()
    assert r1 == r2
    assert "regression" in r1


def test_load_artifact_jsonl(tmp_path):
    p = tmp_path / "history.jsonl"
    p.write_text('{"a": 1}\n{"a": 2}\n\n', encoding="utf-8")
    assert load_artifact(p) == [{"a": 1}, {"a": 2}]


# --------------------------------------------------------------------------- #
# CLI: exit codes and the end-to-end identical-vs-perturbed criterion
# --------------------------------------------------------------------------- #
def _write(path: Path, doc) -> Path:
    path.write_text(json.dumps(doc), encoding="utf-8")
    return path


def test_cli_diff_identical_run_reports_exit_zero(tmp_path, capsys):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    assert main(["run", "E14", "--no-cache", "--jobs", "2",
                 "--report-json", str(a)]) == 0
    assert main(["run", "E14", "--no-cache", "--jobs", "2",
                 "--report-json", str(b)]) == 0
    capsys.readouterr()
    assert main(["diff", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "0 regression(s)" in out


def test_cli_diff_flags_perturbed_run(tmp_path, capsys):
    a = tmp_path / "a.json"
    assert main(["run", "E14", "--no-cache",
                 "--report-json", str(a)]) == 0
    capsys.readouterr()
    doc = json.loads(a.read_text(encoding="utf-8"))
    doc["result_digest"] = "0" * 64          # outcome drift
    doc["computed"] += 1
    b = _write(tmp_path / "b.json", doc)
    assert main(["diff", str(a), str(b)]) == 1
    out = capsys.readouterr().out
    assert "result_digest" in out and "regression" in out


def test_cli_diff_json_output(tmp_path, capsys):
    a = _write(tmp_path / "a.json", {"points": 3})
    b = _write(tmp_path / "b.json", {"points": 4})
    out = tmp_path / "diff.json"
    assert main(["diff", str(a), str(b), "--json", str(out)]) == 1
    capsys.readouterr()
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert payload["ok"] is False
    assert payload["counts"]["regressions"] == 1
    assert payload["entries"][0]["path"] == "points"


def test_cli_diff_rel_tol_flag(tmp_path, capsys):
    a = _write(tmp_path / "a.json", {"wall_s": 10.0})
    b = _write(tmp_path / "b.json", {"wall_s": 14.0})
    assert main(["diff", str(a), str(b)]) == 1          # +40% > default 20%
    assert main(["diff", str(a), str(b), "--rel-tol", "0.5"]) == 0
    capsys.readouterr()


def test_cli_diff_bad_file_exits_two(tmp_path, capsys):
    good = _write(tmp_path / "a.json", {"points": 3})
    assert main(["diff", str(good), str(tmp_path / "nope.json")]) == 2
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    assert main(["diff", str(good), str(bad)]) == 2
    capsys.readouterr()


def test_diff_files_names_come_from_paths(tmp_path):
    a = _write(tmp_path / "base.json", {"points": 3})
    b = _write(tmp_path / "cand.json", {"points": 3})
    report = diff_files(a, b)
    assert report.ok
    assert report.base_name.endswith("base.json")
    assert report.cand_name.endswith("cand.json")
