"""Tests for the crypto-mining heating workload."""

import pytest

from repro.hardware.qrad import CryptoHeater
from repro.sim.engine import Engine
from repro.workloads.mining import MiningController, MiningEconomics


@pytest.fixture()
def heater():
    return CryptoHeater("qc1", Engine())


def test_economics_validation():
    with pytest.raises(ValueError):
        MiningEconomics(hashes_per_cycle=0.0)
    with pytest.raises(ValueError):
        MiningEconomics(coin_price_eur=-1.0)


def test_controller_validation(heater):
    with pytest.raises(ValueError):
        MiningController(heater, chunk_s=0.0)


def test_tick_saturates_when_heat_wanted(heater):
    m = MiningController(heater)
    m.tick(heat_wanted=True)
    assert heater.free_cores == 0
    assert all(t.metadata.get("mining") for t in heater.running_tasks)


def test_chunks_complete_and_book_cycles(heater):
    eng = heater.engine
    m = MiningController(heater, chunk_s=10.0)
    m.tick(True)
    eng.run_until(100.0)
    assert m.chunks_completed >= heater.n_cores
    assert m.cycles_mined > 0
    assert m.hashes == pytest.approx(m.cycles_mined * m.economics.hashes_per_cycle)


def test_drain_preempts_and_powers_off(heater):
    eng = heater.engine
    m = MiningController(heater, chunk_s=1000.0)
    m.tick(True)
    eng.run_until(50.0)  # partway through chunks
    m.tick(False)
    assert heater.busy_cores == 0
    assert not heater.enabled
    assert m.cycles_mined > 0  # partial chunks still counted


def test_revenue_and_cost_positive_after_mining(heater):
    eng = heater.engine
    m = MiningController(heater, chunk_s=10.0)
    m.tick(True)
    eng.run_until(200.0)
    assert m.revenue_eur() > 0
    assert m.electricity_cost_eur() > 0


def test_heat_cycle_resumes_after_power_off(heater):
    eng = heater.engine
    m = MiningController(heater, chunk_s=10.0)
    m.tick(True)
    eng.run_until(30.0)
    m.tick(False)
    eng.run_until(60.0)
    m.tick(True)  # winter night: heat wanted again
    assert heater.enabled
    assert heater.free_cores == 0
