"""Tests for the synthetic Paris-like weather generator."""

import numpy as np
import pytest

from repro.sim.calendar import DAY, HOUR, YEAR
from repro.sim.rng import RngRegistry
from repro.thermal.weather import Weather, WeatherConfig


def make_weather(seed=0, **kw):
    return Weather(RngRegistry(seed).stream("weather"), **kw)


def test_reproducible_from_seed():
    w1, w2 = make_weather(3), make_weather(3)
    ts = np.linspace(0, YEAR, 500)
    np.testing.assert_array_equal(w1.outdoor_temperature(ts), w2.outdoor_temperature(ts))


def test_seed_changes_noise():
    ts = np.linspace(0, YEAR, 500)
    assert not np.array_equal(
        make_weather(1).outdoor_temperature(ts), make_weather(2).outdoor_temperature(ts)
    )


def test_winter_colder_than_summer():
    w = make_weather()
    jan = w.monthly_mean_temperature(1)
    jul = w.monthly_mean_temperature(7)
    assert jul - jan > 8.0  # Paris: ~15 °C seasonal spread


def test_monthly_means_roughly_paris():
    w = make_weather()
    jan = w.monthly_mean_temperature(1)
    jul = w.monthly_mean_temperature(7)
    assert 0.0 < jan < 9.0
    assert 16.0 < jul < 25.0


def test_diurnal_cycle_afternoon_warmer_than_night():
    w = make_weather()
    day = 200  # summer day
    afternoon = w.seasonal_component(day * DAY + 15 * HOUR)
    night = w.seasonal_component(day * DAY + 4 * HOUR)
    assert afternoon > night


def test_scalar_and_array_queries_agree():
    w = make_weather()
    ts = np.array([0.0, DAY, 10 * DAY])
    arr = w.outdoor_temperature(ts)
    for i, t in enumerate(ts):
        assert w.outdoor_temperature(float(t)) == pytest.approx(arr[i])


def test_query_beyond_horizon_raises():
    w = make_weather(horizon=10 * DAY)
    with pytest.raises(ValueError):
        w.outdoor_temperature(11 * DAY)
    with pytest.raises(ValueError):
        w.outdoor_temperature(-1.0)


def test_invalid_horizon_rejected():
    with pytest.raises(ValueError):
        make_weather(horizon=0.0)


def test_solar_zero_at_night_positive_at_noon():
    w = make_weather()
    noon_summer = 180 * DAY + 12 * HOUR
    midnight = 180 * DAY
    assert w.solar_irradiance(noon_summer) > 300.0
    assert w.solar_irradiance(midnight) == 0.0


def test_solar_summer_exceeds_winter():
    w = make_weather()
    assert w.solar_irradiance(172 * DAY + 12 * HOUR) > w.solar_irradiance(15 * DAY + 12 * HOUR)


def test_noise_std_near_configured():
    w = make_weather(seed=5, horizon=4 * YEAR)
    ts = np.arange(0, 4 * YEAR, 6 * HOUR)
    resid = w.outdoor_temperature(ts) - w.seasonal_component(ts)
    assert 1.5 < float(np.std(resid)) < 5.0  # configured 3.2 °C


def test_noise_is_autocorrelated():
    """Synoptic noise should persist across hours (AR(1), ~36 h e-fold)."""
    w = make_weather(seed=7)
    ts = np.arange(0, YEAR, HOUR)
    resid = w.outdoor_temperature(ts) - w.seasonal_component(ts)
    r = np.corrcoef(resid[:-6], resid[6:])[0, 1]  # 6-hour lag
    assert r > 0.6


def test_heating_degree_hours_winter_dominates():
    w = make_weather()
    jan = w.heating_degree_hours(0.0, 31 * DAY)
    jul = w.heating_degree_hours(181 * DAY, 212 * DAY)
    assert jan > 5 * max(jul, 1.0)


def test_custom_config_shifts_mean():
    cfg = WeatherConfig(annual_mean_c=25.0)
    w = Weather(RngRegistry(0).stream("weather"), config=cfg)
    ts = np.arange(0, YEAR, 6 * HOUR)
    assert float(np.mean(w.outdoor_temperature(ts))) == pytest.approx(25.0, abs=1.5)
