"""Tests for fault injection and the middleware's resilience."""

import pytest

from repro.core.faults import FaultInjector
from repro.core.middleware import DF3Middleware, MiddlewareConfig
from repro.core.requests import CloudRequest, EdgeRequest, RequestStatus
from repro.core.scheduling.base import SaturationPolicy
from repro.sim.calendar import DAY, HOUR

GHZ = 1e9
WINTER = 10 * DAY


def make_mw(**kw):
    defaults = dict(n_districts=2, buildings_per_district=1, rooms_per_building=2,
                    dc_nodes=2, seed=3, start_time=WINTER, enable_filler=False)
    defaults.update(kw)
    return DF3Middleware(MiddlewareConfig(**defaults))


def edge(t, source="district-0/building-0", deadline=30.0):
    return EdgeRequest(cycles=0.2 * GHZ, time=t, deadline_s=deadline,
                       source=source, input_bytes=2e3)


# --------------------------------------------------------------------------- #
# server crash
# --------------------------------------------------------------------------- #
def test_crash_kills_and_salvages_cloud_work():
    mw = make_mw()
    fi = FaultInjector(mw)
    req = CloudRequest(cycles=1e13, time=WINTER, cores=4)
    mw.schedulers[0].submit_cloud(req)
    victim = req.executed_on
    mw.run_until(WINTER + 60.0)
    n = fi.crash_server(victim)
    assert n == 1
    assert fi.log.tasks_killed == 1
    assert fi.log.tasks_salvaged == 1
    assert victim in fi.down_servers
    mw.run_until(WINTER + HOUR)
    # the salvaged job finished elsewhere with its progress preserved
    assert req.status is RequestStatus.COMPLETED
    assert req.executed_on != victim


def test_crash_unknown_server_raises():
    mw = make_mw()
    with pytest.raises(KeyError):
        FaultInjector(mw).crash_server("ghost")


def test_recover_restores_capacity():
    mw = make_mw()
    fi = FaultInjector(mw)
    name = mw.clusters[0].workers[0].name
    fi.crash_server(name)
    assert not mw.clusters[0].worker(name).enabled
    fi.recover_server(name)
    assert mw.clusters[0].worker(name).enabled
    assert name not in fi.down_servers
    with pytest.raises(ValueError):
        fi.recover_server(name)


def test_crashed_edge_request_resubmitted():
    mw = make_mw()
    fi = FaultInjector(mw)
    req = EdgeRequest(cycles=5 * GHZ, time=WINTER, deadline_s=120.0,
                      source="district-0/building-0", input_bytes=2e3)
    mw.engine.run_until(WINTER)
    mw.schedulers[0].submit_edge(req)
    victim = req.executed_on
    mw.run_until(WINTER + 0.2)
    fi.crash_server(victim)
    mw.run_until(WINTER + 60.0)
    assert req.status is RequestStatus.COMPLETED
    assert req.executed_on != victim


# --------------------------------------------------------------------------- #
# master outage: the §IV decentralisation property
# --------------------------------------------------------------------------- #
def test_master_outage_rejects_indirect_but_heat_continues():
    mw = make_mw(enable_filler=True)
    fi = FaultInjector(mw)
    fi.fail_master(0)
    assert fi.master_is_down(0)
    req = edge(WINTER + 10.0)
    mw.inject([req])
    mw.run_until(WINTER + HOUR)
    assert req.status is RequestStatus.REJECTED
    # heat regulation is local: rooms still warm despite the central outage
    assert mw.comfort.result().mean_temp_c > 18.0
    assert mw.filler_completed > 0


def test_direct_requests_survive_master_outage():
    mw = make_mw()
    fi = FaultInjector(mw)
    fi.fail_master(0)
    from repro.core.requests import EdgeMode

    req = edge(WINTER + 10.0)
    req.mode = EdgeMode.DIRECT
    target = mw.clusters[0].workers[0].name
    mw.inject([req], direct_targets={req.request_id: target})
    mw.run_until(WINTER + HOUR)
    assert req.status is RequestStatus.COMPLETED


def test_other_district_unaffected_by_master_outage():
    mw = make_mw()
    fi = FaultInjector(mw)
    fi.fail_master(0)
    req = edge(WINTER + 10.0, source="district-1/building-0")
    mw.inject([req])
    mw.run_until(WINTER + HOUR)
    assert req.status is RequestStatus.COMPLETED


def test_master_restore():
    mw = make_mw()
    fi = FaultInjector(mw)
    fi.fail_master(0)
    fi.restore_master(0)
    req = edge(WINTER + 10.0)
    mw.inject([req])
    mw.run_until(WINTER + HOUR)
    assert req.status is RequestStatus.COMPLETED
    with pytest.raises(ValueError):
        fi.restore_master(0)
    fi.fail_master(0)
    with pytest.raises(ValueError):
        fi.fail_master(0)


# --------------------------------------------------------------------------- #
# WAN partition
# --------------------------------------------------------------------------- #
def test_wan_partition_blocks_vertical():
    mw = make_mw(saturation_policy=SaturationPolicy.VERTICAL,
                 allow_privacy_vertical=True)
    fi = FaultInjector(mw)
    fi.partition_wan()
    assert not mw.offloader.can_vertical(CloudRequest(cycles=GHZ, time=WINTER))
    fi.heal_wan()
    assert mw.offloader.can_vertical(CloudRequest(cycles=GHZ, time=WINTER))
    with pytest.raises(ValueError):
        fi.heal_wan()
    fi.partition_wan()
    with pytest.raises(ValueError):
        fi.partition_wan()


# --------------------------------------------------------------------------- #
# salvage semantics (regressions)
# --------------------------------------------------------------------------- #
def test_salvaged_edge_request_lifecycle_is_reset():
    # regression: salvage used to resubmit a still-RUNNING request, leaving
    # started_at/executed_on pointing at the dead server
    mw = make_mw()
    fi = FaultInjector(mw)
    req = EdgeRequest(cycles=50 * GHZ, time=WINTER, deadline_s=3600.0,
                      source="district-0/building-0", input_bytes=2e3)
    mw.engine.run_until(WINTER)
    mw.schedulers[0].submit_edge(req)
    victim = req.executed_on
    # saturate the rest of the district so the salvaged request must queue
    free = sum(w.free_cores for w in mw.clusters[0].workers)
    for _ in range(free):
        mw.schedulers[0].submit_cloud(
            CloudRequest(cycles=1e13, time=WINTER, cores=1, preemptible=False))
    mw.run_until(WINTER + 0.5)
    fi.crash_server(victim)
    assert req.status is RequestStatus.QUEUED
    assert req.executed_on == ""
    assert req.started_at == -1.0


def test_salvage_routes_through_gateway_so_master_outage_applies():
    # regression: salvage used to call the scheduler directly, bypassing a
    # concurrent master outage that rejects all other indirect traffic
    mw = make_mw()
    fi = FaultInjector(mw)
    req = EdgeRequest(cycles=5 * GHZ, time=WINTER, deadline_s=120.0,
                      source="district-0/building-0", input_bytes=2e3)
    mw.engine.run_until(WINTER)
    mw.schedulers[0].submit_edge(req)
    victim = req.executed_on
    mw.run_until(WINTER + 0.2)
    fi.fail_master(0)
    fi.crash_server(victim)
    assert req.status is RequestStatus.REJECTED
    assert req in mw.schedulers[0].expired_edge
    mw.run_until(WINTER + 60.0)
    assert req.status is RequestStatus.REJECTED  # nothing resurrects it


def test_master_outage_keeps_gateway_instrumentation():
    # regression: the outage is a first-class master_up flag, not a method
    # patch, so the gateway still counts what it rejects
    mw = make_mw()
    fi = FaultInjector(mw)
    fi.fail_master(0)
    gw = mw.edge_gateways[0]
    assert gw.master_up is False
    req = edge(WINTER + 10.0)
    mw.inject([req])
    mw.run_until(WINTER + 60.0)
    assert req.status is RequestStatus.REJECTED
    assert gw.received == 1
    fi.restore_master(0)
    assert gw.master_up is True


def test_crash_without_edge_salvage_rejects():
    mw = make_mw()
    fi = FaultInjector(mw)
    req = EdgeRequest(cycles=5 * GHZ, time=WINTER, deadline_s=120.0,
                      source="district-0/building-0", input_bytes=2e3)
    mw.engine.run_until(WINTER)
    mw.schedulers[0].submit_edge(req)
    victim = req.executed_on
    mw.run_until(WINTER + 0.2)
    killed, district = fi.kill_server(victim, hard=True)
    fi.salvage_tasks(killed, district, salvage_edge=False)
    assert req.status is RequestStatus.REJECTED


# --------------------------------------------------------------------------- #
# kill/salvage split and progress modes
# --------------------------------------------------------------------------- #
def _run_cloud_until(mw, t):
    req = CloudRequest(cycles=1e13, time=WINTER, cores=4)
    mw.schedulers[0].submit_cloud(req)
    mw.run_until(t)
    return req


def test_salvage_restart_books_lost_progress_as_waste():
    mw = make_mw()
    fi = FaultInjector(mw)
    req = _run_cloud_until(mw, WINTER + 100.0)
    killed, district = fi.kill_server(req.executed_on, hard=True)
    (task,) = killed
    executed = 1e13 - task.remaining_cycles
    assert executed > 0
    wasted = fi.salvage_tasks(killed, district, progress="restart")
    assert wasted == pytest.approx(executed)
    assert req.cycles == pytest.approx(1e13)  # re-runs from scratch


def test_salvage_checkpoint_restarts_from_snapshot():
    mw = make_mw()
    fi = FaultInjector(mw)
    req = _run_cloud_until(mw, WINTER + 400.0)
    killed, district = fi.kill_server(req.executed_on, hard=True)
    (task,) = killed
    snapshot = 0.6e13  # remaining work at the last (synthetic) checkpoint
    assert task.remaining_cycles < snapshot
    task.metadata["ckpt_remaining"] = snapshot
    wasted = fi.salvage_tasks(killed, district, progress="checkpoint")
    assert wasted == pytest.approx(snapshot - task.remaining_cycles)
    assert req.cycles == pytest.approx(snapshot)


def test_salvage_checkpoint_without_snapshot_is_full_restart():
    mw = make_mw()
    fi = FaultInjector(mw)
    req = _run_cloud_until(mw, WINTER + 100.0)
    killed, district = fi.kill_server(req.executed_on, hard=True)
    fi.salvage_tasks(killed, district, progress="checkpoint")
    assert req.cycles == pytest.approx(1e13)


def test_salvage_rejects_unknown_progress_mode():
    mw = make_mw()
    with pytest.raises(ValueError):
        FaultInjector(mw).salvage_tasks([], 0, progress="wishful")


def test_hard_crash_is_not_resurrected_by_the_regulator():
    mw = make_mw(enable_filler=True)
    fi = FaultInjector(mw)
    name = mw.clusters[0].workers[0].name
    fi.crash_server(name, hard=True)
    mw.run_until(WINTER + 2 * HOUR)  # thermal ticks ask for heat meanwhile
    w = mw.clusters[0].worker(name)
    assert w.failed and not w.enabled
    fi.recover_server(name)
    assert mw.clusters[0].worker(name).enabled
    assert not mw.clusters[0].worker(name).failed


# --------------------------------------------------------------------------- #
# WAN partition
# --------------------------------------------------------------------------- #
def test_partitioned_city_falls_back_to_queue():
    mw = make_mw(saturation_policy=SaturationPolicy.VERTICAL,
                 allow_privacy_vertical=True)
    fi = FaultInjector(mw)
    # saturate district 0
    for w in mw.clusters[0].workers:
        for c in range(w.n_cores):
            mw.schedulers[0].submit_cloud(
                CloudRequest(cycles=1e12, time=WINTER, cores=1, preemptible=False)
            )
    fi.partition_wan()
    req = edge(WINTER + 10.0, deadline=3600.0)
    mw.inject([req])
    mw.run_until(WINTER + 2 * HOUR)
    # no WAN → queued locally, served when the blockers finish
    assert req.status is RequestStatus.COMPLETED
    assert req.executed_on.startswith("district-0/")
