"""Middleware integration: policy paths not covered by the basic suite."""

import pytest

from repro.core.decision import DecisionConfig
from repro.core.middleware import DF3Middleware, MiddlewareConfig
from repro.core.requests import CloudRequest, EdgeMode, EdgeRequest, RequestStatus
from repro.core.scheduling.base import SaturationPolicy
from repro.sim.calendar import DAY, HOUR

GHZ = 1e9
WINTER = 10 * DAY


def make_mw(**kw):
    defaults = dict(n_districts=2, buildings_per_district=1, rooms_per_building=2,
                    dc_nodes=2, seed=5, start_time=WINTER, enable_filler=False)
    defaults.update(kw)
    return DF3Middleware(MiddlewareConfig(**defaults))


def saturate(mw, district=0, preemptible=False):
    for _ in range(mw.clusters[district].free_cores()):
        mw.schedulers[district].submit_cloud(
            CloudRequest(cycles=1e14, time=WINTER, cores=1, preemptible=preemptible)
        )


def edge(deadline=60.0, privacy=False):
    return EdgeRequest(cycles=0.2 * GHZ, time=WINTER + 10.0, deadline_s=deadline,
                       source="district-0/building-0", input_bytes=2e3,
                       privacy_sensitive=privacy)


def test_horizontal_policy_through_middleware():
    mw = make_mw(saturation_policy=SaturationPolicy.HORIZONTAL)
    saturate(mw, 0)
    req = edge()
    mw.inject([req])
    mw.run_until(WINTER + HOUR)
    assert req.status is RequestStatus.COMPLETED
    assert req.executed_on.startswith("district-1/")
    assert mw.offloader.horizontal_count == 1
    assert mw.offloader.ledger.given_by("district-1") > 0


def test_vertical_policy_respects_privacy_through_middleware():
    mw = make_mw(saturation_policy=SaturationPolicy.VERTICAL)
    saturate(mw, 0)
    private = edge(privacy=True)
    public = edge(privacy=False)
    mw.inject([private, public])
    mw.run_until(WINTER + HOUR)
    # public request crossed to the datacenter; private one stayed queued
    assert public.executed_on == "dc"
    assert private.status in (RequestStatus.QUEUED, RequestStatus.REJECTED)


def test_decision_policy_through_middleware():
    mw = make_mw(saturation_policy=SaturationPolicy.DECISION,
                 decision=DecisionConfig(prefer_preempt=True))
    saturate(mw, 0, preemptible=True)  # preemptible background fills district 0
    req = edge(deadline=5.0)
    mw.inject([req])
    mw.run_until(WINTER + HOUR)
    assert req.status is RequestStatus.COMPLETED
    assert req.deadline_met()
    assert mw.schedulers[0].stats.edge_preemptions_triggered >= 1


def test_direct_edge_through_middleware_gateway():
    mw = make_mw()
    req = edge()
    req.mode = EdgeMode.DIRECT
    target = mw.clusters[0].workers[0].name
    mw.inject([req], direct_targets={req.request_id: target})
    mw.run_until(WINTER + HOUR)
    assert req.status is RequestStatus.COMPLETED
    assert req.executed_on == target
    assert mw.edge_gateways[0].direct_requests == 1


def test_context_switch_configured_through_middleware():
    mw = make_mw(context_switch_s=3.0)
    sched = mw.schedulers[0]
    assert sched.context_switch_s == 3.0
    c = CloudRequest(cycles=GHZ, time=WINTER, cores=1)
    sched.submit_cloud(c)
    e = edge(deadline=120.0)
    mw.engine.run_until(WINTER + 5.0)
    sched.submit_edge(e)
    mw.run_until(WINTER + HOUR)
    assert sched.context_switches >= 1


def test_grid_cap_through_middleware_smartgrid():
    mw = make_mw(enable_filler=True)
    mw.run_until(WINTER + 2 * HOUR)
    p_before = sum(s.power_w() for s in mw.all_servers)
    mw.smartgrid.set_grid_cap(0.3 * p_before)
    mw.run_until(WINTER + 6 * HOUR)
    assert mw.smartgrid.curtailment_events > 0


def test_no_datacenter_configuration():
    mw = make_mw(dc_nodes=0)
    assert mw.datacenter is None
    assert not mw.offloader.can_vertical(CloudRequest(cycles=GHZ, time=WINTER))
    # the city still serves local work
    req = edge()
    mw.inject([req])
    mw.run_until(WINTER + HOUR)
    assert req.status is RequestStatus.COMPLETED
