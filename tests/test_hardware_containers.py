"""Tests for the container deployment stack."""

import pytest

from repro.hardware.containers import ContainerImage, DeploymentStack, Registry
from repro.network.link import Link


def make_registry(bandwidth=1e9):
    return Registry(Link("fiber", 0.004, bandwidth))


def test_image_validation():
    with pytest.raises(ValueError):
        ContainerImage("x", size_bytes=0.0)
    with pytest.raises(ValueError):
        ContainerImage("x", size_bytes=1e9, cold_start_s=-1.0)


def test_registry_publish_and_lookup():
    reg = make_registry()
    img = ContainerImage("render", 2e9)
    reg.publish(img)
    assert reg.image("render") is img
    with pytest.raises(ValueError):
        reg.publish(img)
    with pytest.raises(KeyError):
        reg.image("ghost")


def test_pull_delay_scales_with_size():
    reg = make_registry(bandwidth=1e9)
    reg.publish(ContainerImage("small", 1e8))
    reg.publish(ContainerImage("big", 4e9))
    assert reg.pull_delay("big") > reg.pull_delay("small")
    assert reg.pulls == 2
    assert reg.bytes_served == pytest.approx(4.1e9)


def test_cold_miss_pays_pull_plus_start():
    reg = make_registry(bandwidth=1e9)
    reg.publish(ContainerImage("edge-ml", 1e9, cold_start_s=2.0))
    stack = DeploymentStack(reg)
    delay = stack.ensure("edge-ml")
    assert delay == pytest.approx(0.004 + 8.0 + 2.0)  # pull (8 s) + start
    assert stack.misses == 1


def test_hot_environment_restarts_free():
    reg = make_registry()
    reg.publish(ContainerImage("edge-ml", 1e9, cold_start_s=2.0))
    stack = DeploymentStack(reg)
    stack.ensure("edge-ml")
    assert stack.ensure("edge-ml") == 0.0  # same environment again: free
    assert stack.hits == 1


def test_warm_but_not_hot_pays_cold_start_only():
    reg = make_registry()
    reg.publish(ContainerImage("a", 1e9, cold_start_s=2.0))
    reg.publish(ContainerImage("b", 1e9, cold_start_s=3.0))
    stack = DeploymentStack(reg)
    stack.ensure("a")
    stack.ensure("b")
    # "a" is cached but "b" was the last environment: switching restarts "a"
    assert stack.ensure("a") == pytest.approx(2.0)
    assert stack.hit_rate() == pytest.approx(1 / 3)


def test_lru_eviction_under_disk_budget():
    reg = make_registry()
    for name in ("a", "b", "c"):
        reg.publish(ContainerImage(name, 4e9))
    stack = DeploymentStack(reg, disk_bytes=10e9)
    stack.ensure("a")
    stack.ensure("b")
    stack.ensure("c")  # evicts "a" (LRU)
    assert stack.evictions == 1
    assert not stack.is_warm("a")
    assert stack.is_warm("b") and stack.is_warm("c")
    assert stack.used_bytes <= 10e9


def test_oversized_image_rejected():
    reg = make_registry()
    reg.publish(ContainerImage("huge", 100e9))
    stack = DeploymentStack(reg, disk_bytes=50e9)
    with pytest.raises(ValueError):
        stack.ensure("huge")


def test_prefetch_hides_cold_start():
    reg = make_registry()
    reg.publish(ContainerImage("a", 1e9, cold_start_s=2.0))
    stack = DeploymentStack(reg)
    pull = stack.prefetch("a")
    assert pull > 0
    assert stack.ensure("a") == 0.0  # hot after prefetch
    assert stack.prefetch("a") == 0.0


def test_stack_validation():
    with pytest.raises(ValueError):
        DeploymentStack(make_registry(), disk_bytes=0.0)
