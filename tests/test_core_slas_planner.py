"""Tests for SLA auditing and the seasonal campaign planner (§IV)."""

import pytest

from repro.core.pricing import SeasonalPricing
from repro.core.requests import EdgeRequest
from repro.core.seasonal_planner import plan_campaign
from repro.core.slas import SLAAuditor, SLAContract, SLATerm
from repro.sim.calendar import DAY, SimCalendar

CAL = SimCalendar()


def completed(rt, month=1):
    t = CAL.month_start(month) + 5 * DAY
    r = EdgeRequest(cycles=1e9, time=t, deadline_s=10.0)
    r.mark_completed(t + rt)
    return r


def failed(month=1):
    t = CAL.month_start(month) + 5 * DAY
    r = EdgeRequest(cycles=1e9, time=t, deadline_s=10.0)
    r.mark_rejected()
    return r


# --------------------------------------------------------------------------- #
# SLA terms / contracts
# --------------------------------------------------------------------------- #
def test_term_validation():
    with pytest.raises(ValueError):
        SLATerm("t", latency_s=0.0)
    with pytest.raises(ValueError):
        SLATerm("t", latency_s=1.0, percentile=0.0)
    with pytest.raises(ValueError):
        SLATerm("t", latency_s=1.0, months=(13,))
    with pytest.raises(ValueError):
        SLATerm("t", latency_s=1.0, penalty_eur_per_violation=-1.0)


def test_contract_validation():
    with pytest.raises(ValueError):
        SLAContract("c", terms=())
    with pytest.raises(ValueError):
        SLAContract("c", terms=(SLATerm("t", 1.0),), min_completion_rate=0.0)


def test_term_seasonal_applicability():
    term = SLATerm("winter", latency_s=1.0, months=(12, 1, 2))
    assert term.applies_at(CAL.month_start(1) + DAY, CAL)
    assert not term.applies_at(CAL.month_start(7) + DAY, CAL)


def test_compliant_audit():
    contract = SLAContract("c", terms=(SLATerm("p95-1s", 1.0, 95.0),))
    reqs = [completed(0.2) for _ in range(100)]
    report = SLAAuditor(contract).audit(reqs)
    assert report.compliant
    assert report.total_penalty_eur == 0.0
    assert "COMPLIANT" in str(report)


def test_latency_breach_detected_and_priced():
    contract = SLAContract(
        "c", terms=(SLATerm("p95-1s", 1.0, 95.0, penalty_eur_per_violation=0.10),)
    )
    reqs = [completed(0.2) for _ in range(80)] + [completed(5.0) for _ in range(20)]
    report = SLAAuditor(contract).audit(reqs)
    assert not report.compliant
    v = report.violations[0]
    assert v.violating_requests == 20
    # 5 of 100 were allowed at p95 → 15 billable
    assert v.penalty_eur == pytest.approx(1.5)
    assert "BREACHED" in str(report)


def test_failed_requests_count_against_floor_and_terms():
    contract = SLAContract("c", terms=(SLATerm("p95-1s", 1.0, 95.0),),
                           min_completion_rate=0.99)
    reqs = [completed(0.2) for _ in range(90)]
    fails = [failed() for _ in range(10)]
    report = SLAAuditor(contract).audit(reqs, failed=fails)
    assert report.completion_rate == pytest.approx(0.9)
    assert not report.completion_ok
    assert not report.compliant


def test_seasonal_term_ignores_out_of_scope_months():
    contract = SLAContract(
        "c", terms=(SLATerm("winter-only", 0.5, 95.0, months=(1,)),)
    )
    july_slow = [completed(5.0, month=7) for _ in range(50)]
    report = SLAAuditor(contract).audit(july_slow)
    assert report.compliant  # the hard term simply does not apply in July


def test_winter_edge_canonical_contract():
    c = SLAContract.winter_edge()
    fast_january = [completed(0.3, month=1) for _ in range(100)]
    assert SLAAuditor(c).audit(fast_january).compliant
    slow_january = [completed(1.0, month=1) for _ in range(100)]
    report = SLAAuditor(c).audit(slow_january)
    assert any(v.term == "winter-hard" for v in report.violations)


# --------------------------------------------------------------------------- #
# seasonal planner
# --------------------------------------------------------------------------- #
def pricing():
    caps = {1: 1000.0, 2: 900.0, 6: 100.0, 7: 50.0, 12: 1100.0}
    return SeasonalPricing(caps)


def test_planner_prefers_cheap_winter():
    p = pricing()
    plan = plan_campaign(500.0, months=(7, 12, 1), pricing=p)
    assert plan.feasible
    # December (cheapest, most capacity) absorbs everything
    assert plan.allocation[12] == pytest.approx(500.0)
    assert plan.allocation[7] == 0.0
    assert plan.mean_price() == pytest.approx(p.spot_price(12))


def test_planner_spills_to_next_cheapest():
    p = pricing()
    plan = plan_campaign(800.0, months=(12, 1), pricing=p, capacity_share=0.5)
    assert plan.feasible
    assert plan.allocation[12] == pytest.approx(550.0)  # half of 1100
    assert plan.allocation[1] == pytest.approx(250.0)
    assert plan.months_used == [1, 12]


def test_planner_infeasible_reports_shortfall():
    p = pricing()
    plan = plan_campaign(10_000.0, months=(6, 7), pricing=p)
    assert not plan.feasible
    assert plan.unplaced_core_hours > 0
    placed = sum(plan.allocation.values())
    assert placed == pytest.approx((100.0 + 50.0) * 0.5)


def test_planner_summer_costs_more_than_winter():
    p = pricing()
    winter = plan_campaign(100.0, months=(12,), pricing=p)
    summer = plan_campaign(50.0, months=(6,), pricing=p)
    assert summer.mean_price() > winter.mean_price()


def test_planner_validation():
    p = pricing()
    with pytest.raises(ValueError):
        plan_campaign(-1.0, months=(1,), pricing=p)
    with pytest.raises(ValueError):
        plan_campaign(1.0, months=(), pricing=p)
    with pytest.raises(ValueError):
        plan_campaign(1.0, months=(1, 1), pricing=p)
    with pytest.raises(ValueError):
        plan_campaign(1.0, months=(1,), pricing=p, capacity_share=0.0)


def test_zero_demand_plan():
    plan = plan_campaign(0.0, months=(1,), pricing=pricing())
    assert plan.feasible
    assert plan.total_cost_eur == 0.0
    assert plan.months_used == []
