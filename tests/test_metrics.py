"""Tests for metric collectors, latency/energy reports and tables."""

import math

import numpy as np
import pytest

from repro.core.requests import CloudRequest, EdgeRequest
from repro.hardware.datacenter import Datacenter
from repro.hardware.qrad import QRad
from repro.hardware.server import Task
from repro.metrics.collectors import TimeSeries, percentile
from repro.metrics.energy import EnergyReport, joules_to_kwh
from repro.metrics.latency import LatencyStats
from repro.metrics.report import Table, format_series
from repro.sim.engine import Engine


# --------------------------------------------------------------------------- #
# collectors
# --------------------------------------------------------------------------- #
def test_percentile():
    assert percentile([1, 2, 3, 4, 5], 50) == 3.0
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1], 150)


def test_timeseries_basics():
    ts = TimeSeries("x")
    ts.add(0.0, 1.0)
    ts.add(10.0, 3.0)
    assert len(ts) == 2
    assert ts.mean() == 2.0
    with pytest.raises(ValueError):
        ts.add(5.0, 0.0)  # time went backwards
    with pytest.raises(ValueError):
        TimeSeries("y").mean()


def test_time_weighted_mean():
    ts = TimeSeries("x")
    ts.add(0.0, 0.0)   # holds 0 for 9 s
    ts.add(9.0, 10.0)  # holds 10 for 1 s
    ts.add(10.0, 10.0)
    assert ts.time_weighted_mean() == pytest.approx(1.0)


def test_time_weighted_mean_single_sample_falls_back_to_mean():
    ts = TimeSeries("x")
    ts.add(5.0, 3.0)
    assert ts.time_weighted_mean() == 3.0


def test_time_weighted_mean_differs_from_unweighted_on_uneven_sampling():
    ts = TimeSeries("x")
    ts.add(0.0, 0.0)
    ts.add(1.0, 100.0)   # short spike
    ts.add(100.0, 100.0)
    assert ts.mean() == pytest.approx(200.0 / 3)
    assert ts.time_weighted_mean() == pytest.approx(99.0, rel=1e-3)


def test_monotonic_time_guard_allows_equal_times():
    ts = TimeSeries("x")
    ts.add(1.0, 1.0)
    ts.add(1.0, 2.0)  # simultaneous samples are legal (same tick)
    assert len(ts) == 2
    with pytest.raises(ValueError):
        ts.add(0.999, 3.0)


def test_window_and_buckets():
    ts = TimeSeries("x")
    for t in range(10):
        ts.add(float(t), float(t))
    w = ts.window(2.0, 5.0)
    assert list(w.values) == [2.0, 3.0, 4.0]
    buckets = ts.bucket_means([0.0, 5.0, 10.0])
    assert buckets[(0.0, 5.0)] == 2.0
    assert buckets[(5.0, 10.0)] == 7.0


# --------------------------------------------------------------------------- #
# latency
# --------------------------------------------------------------------------- #
def completed_edge(rt, deadline=1.0):
    r = EdgeRequest(cycles=1e9, time=0.0, deadline_s=deadline)
    r.mark_completed(rt)
    return r


def test_latency_stats():
    reqs = [completed_edge(0.1), completed_edge(0.2), completed_edge(2.0)]
    s = LatencyStats.from_requests(reqs)
    assert s.count == 3
    assert s.mean_s == pytest.approx((0.1 + 0.2 + 2.0) / 3)
    assert s.deadline_miss_rate == pytest.approx(1 / 3)
    assert "miss" in str(s)


def test_latency_with_expired():
    reqs = [completed_edge(0.1)]
    expired = [EdgeRequest(cycles=1e9, time=0.0, deadline_s=1.0)]
    s = LatencyStats.from_requests(reqs, expired=expired)
    assert s.deadline_miss_rate == pytest.approx(0.5)


def test_latency_cloud_no_deadline():
    r = CloudRequest(cycles=1e9, time=0.0)
    r.mark_completed(5.0)
    s = LatencyStats.from_requests([r])
    assert math.isnan(s.deadline_miss_rate)


def test_latency_empty_raises():
    with pytest.raises(ValueError):
        LatencyStats.from_requests([])


# --------------------------------------------------------------------------- #
# energy
# --------------------------------------------------------------------------- #
def test_joules_to_kwh():
    assert joules_to_kwh(3.6e6) == 1.0


def test_energy_report_pue_and_fractions():
    r = EnergyReport(it_energy_kwh=10.0, total_energy_kwh=13.5,
                     useful_heat_kwh=9.0, cycles_executed=1e12)
    assert r.pue == pytest.approx(1.35)
    assert r.useful_heat_fraction == pytest.approx(9.0 / 13.5)
    assert r.kwh_per_gigacycle() == pytest.approx(13.5 / 1000)


def test_energy_report_validation():
    with pytest.raises(ValueError):
        EnergyReport(10.0, 5.0, 0.0, 0.0)
    with pytest.raises(ValueError):
        EnergyReport(1.0, 1.0, -1.0, 0.0)


def test_energy_from_df_fleet_pue_is_one():
    eng = Engine()
    q = QRad("q", eng)
    q.submit(Task("t", 1e12, cores=16))
    eng.run_until(100.0)
    q.sync()  # settle idle-period energy before reading it
    rep = EnergyReport.from_df_fleet([q], useful_heat_j=q.energy_j)
    assert rep.pue == pytest.approx(1.0)
    assert rep.useful_heat_fraction == pytest.approx(1.0)


def test_energy_from_datacenter_pue_above_one():
    eng = Engine()
    dc = Datacenter("dc", 1, eng, cooling_overhead=0.35, fixed_overhead_w=0.0)
    dc.submit(Task("t", 1e12, cores=32))
    eng.run_until(100.0)
    rep = EnergyReport.from_datacenter(dc)
    assert rep.pue == pytest.approx(1.35, abs=0.01)
    assert rep.useful_heat_fraction == 0.0


# --------------------------------------------------------------------------- #
# report
# --------------------------------------------------------------------------- #
def test_table_render():
    t = Table(["name", "value"], title="demo")
    t.add_row("alpha", 1.5)
    t.add_row("beta", 0.001)
    out = t.render()
    assert "demo" in out
    assert "alpha" in out
    assert out.count("\n") == 4  # title + header + rule + 2 rows


def test_table_validation():
    with pytest.raises(ValueError):
        Table([])
    t = Table(["a"])
    with pytest.raises(ValueError):
        t.add_row(1, 2)


def test_format_series():
    out = format_series("fig", [1, 2], [10.0, 20.0], x_label="month", y_label="temp")
    assert "fig" in out and "month" in out and "10" in out
