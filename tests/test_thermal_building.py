"""Tests for rooms, thermostats and buildings."""

import numpy as np
import pytest

from repro.sim.calendar import DAY, HOUR
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.thermal.building import Building, RoomConfig, ThermostatSchedule
from repro.thermal.weather import Weather


class ConstantHeater:
    def __init__(self, watts):
        self.watts = watts

    def heat_output_w(self):
        return self.watts


@pytest.fixture()
def weather():
    return Weather(RngRegistry(1).stream("weather"))


def make_building(weather, n=2, **room_kw):
    cfgs = [RoomConfig(name=f"room-{i}", **room_kw) for i in range(n)]
    return Building(cfgs, weather)


def test_thermostat_schedule_day_night():
    s = ThermostatSchedule(day_setpoint_c=21.0, night_setpoint_c=17.0)
    assert s.setpoint(12.0) == 21.0
    assert s.setpoint(3.0) == 17.0
    assert s.setpoint(23.0) == 17.0


def test_duplicate_room_names_rejected(weather):
    with pytest.raises(ValueError):
        Building([RoomConfig(name="a"), RoomConfig(name="a")], weather)


def test_empty_building_rejected(weather):
    with pytest.raises(ValueError):
        Building([], weather)


def test_room_lookup(weather):
    b = make_building(weather)
    assert b.room("room-1").index == 1
    with pytest.raises(KeyError):
        b.room("nope")


def test_heated_room_warmer_than_unheated(weather):
    b = make_building(weather)
    b.room("room-1").attach(ConstantHeater(700.0))
    t = 10 * DAY  # mid-January
    for i in range(200):
        b.step(t + i * 300.0, 300.0)
    assert b.temperature_of("room-1") > b.temperature_of("room-0") + 2.0


def test_setpoints_follow_schedule(weather):
    b = make_building(weather)
    noon = 12 * HOUR
    night = 3 * HOUR
    assert np.all(b.setpoints(noon) == 20.0)
    assert np.all(b.setpoints(night) == 17.0)


def test_heat_demand_positive_in_winter_zero_in_summer(weather):
    b = make_building(weather)
    winter_demand = b.heat_demand_w(15 * DAY + 12 * HOUR)
    summer_noon = 200 * DAY + 14 * HOUR
    summer_demand = b.heat_demand_w(summer_noon)
    assert np.all(winter_demand > 100.0)
    assert np.all(summer_demand < winter_demand)


def test_heat_demand_higher_when_colder(weather):
    b = make_building(weather)
    ts = np.arange(0, 300 * DAY, 7 * DAY)
    temps = weather.outdoor_temperature(ts)
    cold_t = float(ts[np.argmin(temps)])
    warm_t = float(ts[np.argmax(temps)])
    # compare at same hour of day to isolate weather effect
    cold_noon = cold_t - cold_t % DAY + 12 * HOUR
    warm_noon = warm_t - warm_t % DAY + 12 * HOUR
    assert b.heat_demand_w(cold_noon)[0] > b.heat_demand_w(warm_noon)[0]


def test_engine_driven_building_reaches_sane_band(weather):
    """A winter week with a thermostatically sized heater holds a sane band."""
    b = make_building(weather, n=1)
    heater = ConstantHeater(0.0)
    b.rooms[0].attach(heater)
    eng = Engine(start=5 * DAY)

    def control(now, dt):
        # crude bang-bang thermostat at 20 °C
        heater.watts = 1000.0 if b.temperatures[0] < 20.0 else 0.0
        b.step(now, dt)

    eng.add_process("building", 300.0, control)
    eng.run_until(12 * DAY)
    assert 15.0 < b.temperatures[0] < 24.0


def test_occupancy_gain_window():
    cfg = RoomConfig(name="r", occupant_gain_w=100.0, occupied_hours=(8.0, 18.0))
    from repro.thermal.building import Room

    r = Room(0, cfg)
    assert r.occupancy_gain_w(12.0) == 100.0
    assert r.occupancy_gain_w(3.0) == 0.0


def test_aux_heat_counts(weather):
    b = make_building(weather, n=1)
    b.rooms[0].aux_heat_w = 250.0
    assert b.rooms[0].heater_power_w() == 250.0
