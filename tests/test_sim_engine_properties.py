"""Property-based tests (hypothesis) for the discrete-event engine.

The vectorised kernel (DESIGN.md §2.13) leans on three engine contracts that
example-based tests only spot-check:

* **dispatch order** — whatever mixture of times, priorities and insertion
  orders is thrown at the heap, events run sorted by ``(time, priority,
  seq)``; the heap's tuple encoding must never consult anything else;
* **lazy cancellation** — cancelled events are skipped silently wherever
  they sit in the heap, never run, never counted, and never perturb the
  order of surviving events;
* **tick fusion** — processes registered into one ``group`` observe exactly
  the ``(now, dt)`` sequence their unfused twins would, in registration
  order, while dispatching as a single event per tick.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine

# small float times quantised to 0.25 keep plenty of deliberate ties
times = st.integers(min_value=0, max_value=40).map(lambda i: i * 0.25)
priorities = st.integers(min_value=-2, max_value=2)


# --------------------------------------------------------------------------- #
# dispatch order
# --------------------------------------------------------------------------- #
@given(st.lists(st.tuples(times, priorities), min_size=1, max_size=60))
@settings(max_examples=200)
def test_dispatch_follows_time_priority_seq(schedule):
    eng = Engine()
    ran = []
    expected = []
    for seq, (t, prio) in enumerate(schedule):
        eng.schedule_at(t, lambda k=(t, prio, seq): ran.append(k), priority=prio)
        expected.append((t, prio, seq))
    eng.run_until(100.0)
    assert ran == sorted(expected)
    assert eng.events_executed == len(schedule)
    assert eng.pending == 0


@given(st.lists(st.tuples(times, priorities), min_size=1, max_size=40), st.data())
@settings(max_examples=200)
def test_interleaved_scheduling_keeps_global_order(schedule, data):
    """Events scheduled *during* the run still dispatch in global order.

    Every callback logs the ``(time, priority, seq)`` of its own event; the
    dispatch sequence must equal those triples sorted, children included.
    """
    eng = Engine()
    ran = []

    def spawn(t, prio, extra):
        ev = eng.schedule_at(t, lambda: fire(ev, extra), priority=prio)
        return ev

    def fire(ev, extra):
        ran.append((ev.time, ev.priority, ev.seq))
        # children go strictly into the future: an event scheduled at the
        # current instant runs after everything already dispatched regardless
        # of priority, which is correct but outside the sorted-triple model
        if extra is not None and extra[0] > eng.now:
            spawn(extra[0], extra[1], None)

    for t, prio in schedule:
        extra = data.draw(st.none() | st.tuples(times, priorities), label="child")
        spawn(t, prio, extra)
    eng.run_until(100.0)
    assert ran == sorted(ran)
    assert eng.events_executed == len(ran)


@given(st.lists(st.tuples(times, priorities), min_size=2, max_size=60),
       st.data())
@settings(max_examples=200)
def test_cancelled_events_never_run_and_preserve_order(schedule, data):
    eng = Engine()
    ran = []
    events = []
    keys = []
    for seq, (t, prio) in enumerate(schedule):
        key = (t, prio, seq)
        events.append(eng.schedule_at(t, lambda k=key: ran.append(k),
                                      priority=prio))
        keys.append(key)
    doomed = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(events) - 1),
                max_size=len(events) - 1),
        label="cancelled",
    )
    for i in doomed:
        events[i].cancel()
    eng.run_until(100.0)
    survivors = [k for i, k in enumerate(keys) if i not in doomed]
    assert ran == sorted(survivors)
    # cancelled events are not counted as executed
    assert eng.events_executed == len(survivors)


# --------------------------------------------------------------------------- #
# tick fusion
# --------------------------------------------------------------------------- #
@given(
    st.integers(min_value=1, max_value=5),          # members in the group
    st.sampled_from([0.5, 1.0, 2.0]),               # period
    st.sampled_from([0.0, 0.25]),                   # offset
    st.sampled_from([7.0, 10.0]),                   # horizon
)
@settings(max_examples=100)
def test_fused_group_matches_unfused_processes(n_members, period, offset, horizon):
    """Fusion changes event count, never the (name, now, dt) call sequence."""

    def drive(group):
        eng = Engine()
        calls = []
        for i in range(n_members):
            eng.add_process(f"p{i}", period,
                            lambda now, dt, i=i: calls.append((i, now, dt)),
                            offset=offset, group=group)
        eng.run_until(horizon)
        return calls, eng.events_executed

    fused_calls, fused_events = drive("tick")
    plain_calls, plain_events = drive(None)

    assert fused_calls == plain_calls
    ticks = len(fused_calls) // max(n_members, 1)
    # one dispatched event per fused tick vs one per member per tick
    assert fused_events == ticks
    assert plain_events == ticks * n_members


@given(st.integers(min_value=2, max_value=5), st.integers(min_value=0, max_value=4))
@settings(max_examples=50)
def test_fused_member_can_stop_later_member_mid_tick(n_members, stopper):
    """A member stopping a later member mid-tick mirrors unfused semantics."""
    stopper = stopper % n_members
    victim = (stopper + 1) % n_members

    def drive(group):
        eng = Engine()
        calls = []
        procs = []

        def make(i):
            def fn(now, dt):
                calls.append((i, now))
                if i == stopper and victim > stopper:
                    procs[victim].stop()
            return fn

        for i in range(n_members):
            procs.append(eng.add_process(f"p{i}", 1.0, make(i), group=group))
        eng.run_until(3.0)
        return calls

    assert drive("g") == drive(None)


def test_same_period_different_offsets_do_not_fuse():
    eng = Engine()
    calls = []
    eng.add_process("a", 1.0, lambda now, dt: calls.append("a"), group="g")
    eng.add_process("b", 1.0, lambda now, dt: calls.append("b"), offset=0.5,
                    group="g")
    eng.run_until(1.6)
    # distinct (group, period, offset) keys -> separate events, phase-shifted
    assert calls == ["a", "b"]
    assert eng.events_executed == 2
