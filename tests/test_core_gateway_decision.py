"""Tests for gateways and the automated decision system."""

import pytest

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.decision import Decision, DecisionConfig, DecisionSystem
from repro.core.gateway import DCCGateway, EdgeGateway
from repro.core.offloading import Offloader
from repro.core.requests import CloudRequest, EdgeMode, EdgeRequest, RequestStatus
from repro.core.scheduling.base import SaturationPolicy
from repro.core.scheduling.shared import SharedWorkersScheduler
from repro.hardware.cpu import DVFSLadder, PState
from repro.hardware.datacenter import Datacenter
from repro.hardware.server import ComputeServer, ServerSpec
from repro.network.internet import WANLink, WANProfile
from repro.network.link import Link
from repro.network.lowpower import SIGFOX, ZIGBEE
from repro.sim.engine import Engine

GHZ = 1e9


def spec(n_cores=2):
    return ServerSpec("t", n_cores, DVFSLadder([PState(1.0, 1.0)]), 10.0, 100.0)


def make_sched(engine, cores=2, n_workers=1, **kw):
    c = Cluster(ClusterConfig(name="c0", master_overhead_s=0.002))
    for i in range(n_workers):
        c.add_worker(ComputeServer(f"w{i}", spec(cores), engine))
    return SharedWorkersScheduler(c, engine, **kw)


def edge(t=0.0, cycles=GHZ, deadline=60.0, mode=EdgeMode.INDIRECT, privacy=False):
    return EdgeRequest(cycles=cycles, time=t, deadline_s=deadline, mode=mode,
                       privacy_sensitive=privacy,
                       source="district-0/building-0", input_bytes=2e3, output_bytes=500)


# --------------------------------------------------------------------------- #
# edge gateway
# --------------------------------------------------------------------------- #
def test_indirect_request_pays_radio_and_master_overhead():
    eng = Engine()
    sched = make_sched(eng)
    gw = EdgeGateway(sched, eng, protocol=ZIGBEE)
    req = edge()
    gw.submit(req)
    assert req.status is RequestStatus.CREATED  # still in flight
    eng.run_until(100.0)
    assert req.status is RequestStatus.COMPLETED
    # network delay includes radio + master overhead
    assert req.network_delay_s > 0.015
    assert req.response_time() > 1.0  # 1 s compute at 1 GHz + delays


def test_direct_request_skips_master():
    eng = Engine()
    sched = make_sched(eng)
    gw = EdgeGateway(sched, eng, protocol=ZIGBEE)
    direct = edge(mode=EdgeMode.DIRECT)
    indirect = edge(mode=EdgeMode.INDIRECT)
    gw.submit(direct, direct_target=sched.cluster.worker("w0"))
    gw2 = EdgeGateway(sched, eng, protocol=ZIGBEE)
    gw2.submit(indirect)
    eng.run_until(100.0)
    assert direct.status is RequestStatus.COMPLETED
    assert indirect.status is RequestStatus.COMPLETED
    assert direct.network_delay_s < indirect.network_delay_s
    assert gw.direct_requests == 1


def test_direct_request_needs_target():
    eng = Engine()
    gw = EdgeGateway(make_sched(eng), eng)
    with pytest.raises(ValueError):
        gw.submit(edge(mode=EdgeMode.DIRECT))


def test_direct_request_rejected_when_server_busy():
    eng = Engine()
    sched = make_sched(eng, cores=1)
    sched.submit_cloud(CloudRequest(cycles=1000 * GHZ, time=0.0))
    gw = EdgeGateway(sched, eng)
    req = edge(mode=EdgeMode.DIRECT)
    gw.submit(req, direct_target=sched.cluster.worker("w0"))
    eng.run_until(10.0)
    assert req.status is RequestStatus.REJECTED  # no master to queue it
    assert gw.direct_rejections == 1


def test_sigfox_gateway_adds_seconds_of_latency():
    eng = Engine()
    sched = make_sched(eng)
    gw = EdgeGateway(sched, eng, protocol=SIGFOX)
    req = edge(deadline=300.0)
    req.input_bytes = 12.0
    gw.submit(req)
    eng.run_until(1000.0)
    assert req.network_delay_s > 2.0  # sigfox base latency


# --------------------------------------------------------------------------- #
# dcc gateway
# --------------------------------------------------------------------------- #
def test_dcc_gateway_wan_delay_and_return():
    eng = Engine()
    sched = make_sched(eng)
    wan = WANLink(WANProfile.national_internet())
    gw = DCCGateway(sched, eng, wan)
    req = CloudRequest(cycles=GHZ, time=0.0, input_bytes=1e6, output_bytes=1e6)
    gw.submit(req)
    assert req.status is RequestStatus.CREATED
    eng.run_until(100.0)
    assert req.status is RequestStatus.COMPLETED
    # response includes uplink + compute + downlink
    assert req.response_time() > 1.0 + 2 * 0.015
    assert gw.received == 1


# --------------------------------------------------------------------------- #
# decision system
# --------------------------------------------------------------------------- #
def decision_setup(eng, cores=1, with_dc=True, with_peer=False):
    dc = Datacenter("dc", 2, eng) if with_dc else None
    wan = WANLink(WANProfile.national_internet()) if with_dc else None
    off = Offloader(eng, datacenter=dc, wan=wan)
    ds = DecisionSystem()
    sched = make_sched(eng, cores=cores, policy=SaturationPolicy.DECISION,
                       offloader=off, decision_system=ds)
    if with_peer:
        peer = make_sched(eng, cores=8)
        peer.cluster.config = ClusterConfig(name="c1")
        off.register_peer("c0", sched, Link("m0", 0.004, 1e9))
        off.register_peer("c1", peer, Link("m1", 0.004, 1e9))
    return sched, ds, off


def test_decision_config_validation():
    with pytest.raises(ValueError):
        DecisionConfig(slack_factor=0.0)
    with pytest.raises(ValueError):
        DecisionConfig(metro_hop_estimate_s=-1.0)


def test_decision_preempts_when_possible():
    eng = Engine()
    sched, ds, _ = decision_setup(eng)
    sched.submit_cloud(CloudRequest(cycles=1000 * GHZ, time=0.0, preemptible=True))
    req = edge(deadline=5.0)
    sched.submit_edge(req)
    assert ds.decisions[Decision.PREEMPT] == 1
    assert req.status is RequestStatus.RUNNING


def test_decision_queues_when_wait_is_short():
    eng = Engine()
    sched, ds, _ = decision_setup(eng)
    ds.config = DecisionConfig(prefer_preempt=False)
    sched.submit_cloud(CloudRequest(cycles=1 * GHZ, time=0.0, preemptible=False))
    req = edge(deadline=30.0)  # blocker done in 1 s, plenty of slack
    sched.submit_edge(req)
    assert ds.decisions[Decision.QUEUE] == 1
    eng.run_until(100.0)
    assert req.deadline_met()


def test_decision_goes_vertical_when_local_hopeless():
    eng = Engine()
    sched, ds, off = decision_setup(eng)
    sched.submit_cloud(CloudRequest(cycles=10000 * GHZ, time=0.0, preemptible=False))
    req = edge(deadline=3.0)
    sched.submit_edge(req)
    assert ds.decisions[Decision.VERTICAL] == 1
    eng.run_until(100.0)
    assert req.status is RequestStatus.COMPLETED
    assert req.executed_on == "dc"


def test_decision_rejects_hopeless_deadline():
    eng = Engine()
    sched, ds, _ = decision_setup(eng, with_dc=False)
    sched.submit_cloud(CloudRequest(cycles=10000 * GHZ, time=0.0, preemptible=False))
    req = edge(cycles=100 * GHZ, deadline=0.5)  # 100 s of work, 0.5 s budget
    sched.submit_edge(req)
    assert ds.decisions[Decision.REJECT] == 1
    assert req.status is RequestStatus.REJECTED


def test_decision_prefers_horizontal_over_vertical():
    eng = Engine()
    sched, ds, off = decision_setup(eng, with_peer=True)
    ds.config = DecisionConfig(prefer_preempt=False)
    sched.submit_cloud(CloudRequest(cycles=10000 * GHZ, time=0.0, preemptible=False))
    req = edge(deadline=5.0)
    sched.submit_edge(req)
    assert ds.decisions[Decision.HORIZONTAL] == 1
    eng.run_until(100.0)
    assert req.status is RequestStatus.COMPLETED
    assert req.executed_on.startswith("w")  # peer's worker
