"""Tests for the CLI experiment runner."""

import pytest

from repro.cli import EXPERIMENTS, main


def test_list_shows_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for eid in ("F4", "F3", "E1", "E12", "A1", "A4"):
        assert eid in out


def test_unknown_experiment_errors(capsys):
    assert main(["run", "ZZ"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_single_experiment(capsys):
    assert main(["run", "A1"]) == 0
    out = capsys.readouterr().out
    assert "[A1]" in out
    assert "completed in" in out


def test_run_case_insensitive(capsys):
    assert main(["run", "a1"]) == 0
    assert "[A1]" in capsys.readouterr().out


def test_run_with_seed_override(capsys):
    assert main(["run", "A1", "--seed", "123"]) == 0
    out1 = capsys.readouterr().out
    assert main(["run", "A1", "--seed", "123"]) == 0
    out2 = capsys.readouterr().out
    assert out1.split("completed")[0] == out2.split("completed")[0]  # deterministic


def test_registry_is_complete():
    main(["list"])  # populate
    assert len(EXPERIMENTS) == 21
    assert set(EXPERIMENTS) >= {f"E{i}" for i in range(1, 13)}
