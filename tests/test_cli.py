"""Tests for the CLI experiment runner."""

import json

import pytest

from repro.cli import EXPERIMENTS, main
from repro.obs import get_obs


def test_list_shows_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for eid in ("F4", "F3", "E1", "E12", "A1", "A4"):
        assert eid in out


def test_unknown_experiment_errors(capsys):
    assert main(["run", "ZZ"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_single_experiment(capsys):
    assert main(["run", "A1"]) == 0
    out = capsys.readouterr().out
    assert "[A1]" in out
    assert "completed in" in out


def test_run_case_insensitive(capsys):
    assert main(["run", "a1"]) == 0
    assert "[A1]" in capsys.readouterr().out


def test_run_with_seed_override(capsys):
    assert main(["run", "A1", "--seed", "123"]) == 0
    out1 = capsys.readouterr().out
    assert main(["run", "A1", "--seed", "123"]) == 0
    out2 = capsys.readouterr().out
    assert out1.split("completed")[0] == out2.split("completed")[0]  # deterministic


def test_registry_is_complete():
    main(["list"])  # populate
    assert len(EXPERIMENTS) == 22
    assert set(EXPERIMENTS) >= {f"E{i}" for i in range(1, 13)}


# --------------------------------------------------------------------------- #
# observability / export flags
# --------------------------------------------------------------------------- #
def test_run_with_json_export(tmp_path, capsys):
    out = tmp_path / "a1.json"
    assert main(["run", "A1", "--json", str(out)]) == 0
    back = json.loads(out.read_text())
    assert back["experiment_id"] == "A1"
    assert back["data"]  # raw numbers came along
    assert str(out) in capsys.readouterr().out


def test_run_fully_instrumented(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    chrome = tmp_path / "t.json"
    metrics = tmp_path / "m.json"
    assert main(["run", "F3", "--trace", str(trace), "--chrome-trace",
                 str(chrome), "--profile", "--metrics-out", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "profile —" in out
    # JSONL trace: every line parses, several record kinds present
    kinds = set()
    for line in trace.read_text().splitlines():
        kinds.add(json.loads(line)["kind"])
    assert {"request", "regulator", "engine"} <= kinds
    # chrome trace parses and carries events
    doc = json.loads(chrome.read_text())
    assert len(doc["traceEvents"]) > 100
    # metrics snapshot is a non-empty mapping
    snap = json.loads(metrics.read_text())
    assert snap and any(k.startswith("requests_completed") for k in snap)


def test_instrumented_output_identical_to_plain(capsys):
    assert main(["run", "A1", "--seed", "5"]) == 0
    plain = capsys.readouterr().out.split("completed")[0]
    assert main(["run", "A1", "--seed", "5", "--profile"]) == 0
    instrumented = capsys.readouterr().out.split("completed")[0]
    assert plain == instrumented


def test_obs_uninstalled_after_run(tmp_path):
    before = get_obs()
    assert main(["run", "A1", "--metrics-out", str(tmp_path / "m.json")]) == 0
    assert get_obs() is before
    assert not get_obs().active
