"""Determinism regression: same seed → bit-identical experiment output.

This is the contract the observability layer must never break (the tracer
observes the event stream, it is not part of it): running any experiment
twice with the same seed yields identical ``data`` dicts and rendered text.
"""

from repro.experiments import a1_cluster_formation, f3_three_flows


def assert_identical(r1, r2):
    assert r1.data == r2.data
    assert r1.text == r2.text
    assert r1.experiment_id == r2.experiment_id


def test_f3_same_seed_identical_data():
    assert_identical(f3_three_flows.run(duration_days=0.2, seed=42),
                     f3_three_flows.run(duration_days=0.2, seed=42))


def test_a1_same_seed_identical_data():
    assert_identical(a1_cluster_formation.run(seed=9),
                     a1_cluster_formation.run(seed=9))


def test_different_seeds_differ():
    r1 = f3_three_flows.run(duration_days=0.2, seed=1)
    r2 = f3_three_flows.run(duration_days=0.2, seed=2)
    assert r1.data != r2.data  # the seed actually reaches the generators


def test_f3_surrogate_kernel_same_seed_identical_data(monkeypatch):
    """The surrogate tier trades accuracy, never determinism: under
    ``REPRO_KERNEL=surrogate`` a rerun is still bit-identical."""
    monkeypatch.setenv("REPRO_KERNEL", "surrogate")
    assert_identical(f3_three_flows.run(duration_days=0.2, seed=42),
                     f3_three_flows.run(duration_days=0.2, seed=42))
