"""Shared test plumbing: the golden-fixture update flag.

``pytest --update-golden`` rewrites the canonical fixtures under
``tests/golden/`` from the current code instead of comparing against them.
Regenerate deliberately (after an intentional output change), review the
diff, and commit it alongside the change that caused it::

    PYTHONPATH=src python -m pytest tests/test_golden_outputs.py \
        -m 'slow or not slow' --update-golden
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite tests/golden/ fixtures from current experiment output",
    )


@pytest.fixture
def update_golden(request: pytest.FixtureRequest) -> bool:
    """True when this run should rewrite golden fixtures."""
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture(autouse=True)
def _isolated_cli_cache(tmp_path, monkeypatch):
    """Keep `repro run`'s default result cache out of the working tree."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro_cache"))
