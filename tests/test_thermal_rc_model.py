"""Tests for the 2R2C room model, including physics invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.calendar import HOUR
from repro.thermal.rc_model import RCNetwork, RoomThermalParams


def single_room(**kw):
    return RCNetwork([RoomThermalParams()], **kw)


def test_equilibrium_without_heat_matches_outdoor():
    net = single_room(t_init_c=20.0)
    for _ in range(600):
        net.step(HOUR, t_out=5.0)
    assert net.t_air[0] == pytest.approx(5.0, abs=0.1)


def test_steady_state_closed_form_matches_integration():
    net = single_room(t_init_c=10.0)
    target = net.steady_state(t_out=0.0, p_heat=500.0)[0]
    for _ in range(1000):
        net.step(HOUR, t_out=0.0, p_heat=500.0)
    assert net.t_air[0] == pytest.approx(target, abs=0.05)


def test_500w_qrad_heats_default_room_in_winter():
    """The paper's sizing: one 500 W Q.rad should hold ~20 °C at ~5 °C outside."""
    net = single_room()
    t_eq = net.steady_state(t_out=5.0, p_heat=500.0)[0]
    assert 19.0 <= t_eq <= 28.0  # enough headroom; the regulator caps power


def test_required_power_achieves_target():
    net = single_room(t_init_c=20.0)
    p = net.required_power(t_out=0.0, t_target=20.0)[0]
    t_eq = net.steady_state(t_out=0.0, p_heat=p)[0]
    assert t_eq == pytest.approx(20.0, abs=0.2)


def test_required_power_clipped_at_zero_when_warm_outside():
    net = single_room()
    assert net.required_power(t_out=30.0, t_target=20.0)[0] == 0.0


def test_heating_is_monotone_in_power():
    a, b = single_room(t_init_c=15.0), single_room(t_init_c=15.0)
    for _ in range(50):
        a.step(600.0, t_out=5.0, p_heat=200.0)
        b.step(600.0, t_out=5.0, p_heat=800.0)
    assert b.t_air[0] > a.t_air[0]


def test_thermal_inertia_no_instant_jump():
    """Paper §III-A: heater inertia matters. One hour of 500 W must not

    equilibrate the room instantly."""
    net = single_room(t_init_c=10.0)
    t_eq = net.steady_state(t_out=10.0, p_heat=500.0)[0]
    net.step(HOUR, t_out=10.0, p_heat=500.0)
    assert net.t_air[0] < 0.8 * t_eq + 0.2 * 10.0


def test_vectorised_rooms_independent():
    params = [RoomThermalParams(), RoomThermalParams()]
    net = RCNetwork(params, t_init_c=15.0)
    net.step(HOUR, t_out=0.0, p_heat=np.array([0.0, 600.0]))
    assert net.t_air[1] > net.t_air[0]


def test_scalar_inputs_broadcast():
    net = RCNetwork([RoomThermalParams()] * 3, t_init_c=18.0)
    out = net.step(600.0, t_out=5.0, p_heat=100.0)
    assert out.shape == (3,)
    assert np.allclose(out, out[0])


def test_substepping_large_dt_stable():
    net = single_room(t_init_c=20.0)
    net.step(24 * HOUR, t_out=-5.0)  # way beyond dt_max
    assert -5.0 <= net.t_air[0] <= 20.0
    assert np.isfinite(net.t_air[0])


def test_zero_dt_is_noop():
    net = single_room(t_init_c=17.0)
    before = net.t_air.copy()
    net.step(0.0, t_out=0.0)
    np.testing.assert_array_equal(net.t_air, before)


def test_negative_dt_rejected():
    with pytest.raises(ValueError):
        single_room().step(-1.0, t_out=0.0)


def test_empty_network_rejected():
    with pytest.raises(ValueError):
        RCNetwork([])


def test_from_geometry_reasonable():
    p = RoomThermalParams.from_geometry(floor_area_m2=20.0, u_value=0.9)
    assert p.c_air > 0 and p.c_env > 0
    assert p.r_ie < p.r_ea  # air couples to envelope more tightly than env to out
    net = RCNetwork([p])
    t_eq = net.steady_state(t_out=5.0, p_heat=500.0)[0]
    assert 15.0 < t_eq < 40.0


def test_from_geometry_invalid():
    with pytest.raises(ValueError):
        RoomThermalParams.from_geometry(floor_area_m2=0.0)
    with pytest.raises(ValueError):
        RoomThermalParams.from_geometry(floor_area_m2=10.0, ach=0.0)


def test_better_insulation_needs_less_power():
    good = RCNetwork([RoomThermalParams.from_geometry(20.0, u_value=0.4)])
    bad = RCNetwork([RoomThermalParams.from_geometry(20.0, u_value=1.5)])
    assert good.required_power(0.0, 20.0)[0] < bad.required_power(0.0, 20.0)[0]


# --------------------------------------------------------------------------- #
# property-based physics invariants
# --------------------------------------------------------------------------- #
temps = st.floats(min_value=-20.0, max_value=40.0)
powers = st.floats(min_value=0.0, max_value=3000.0)


@settings(max_examples=50, deadline=None)
@given(t_out=temps, t_init=temps, p=powers)
def test_property_temperature_bounded_by_envelope(t_out, t_init, p):
    """Air temp stays within the physical bounds of the 2R2C system.

    The air node can transiently exceed the final equilibrium while the
    envelope is still at its initial temperature: the worst-case quasi-steady
    excursion is ``p / (g_ie + g_inf)`` above the hottest boundary node.
    """
    net = single_room(t_init_c=t_init)
    t_eq = net.steady_state(t_out=t_out, p_heat=p)[0]
    slack = p / float(net.g_ie[0] + net.g_inf[0])
    lo = min(t_init, t_out, t_eq) - 1e-6
    hi = max(t_init, t_out, t_eq) + slack + 1e-6
    for _ in range(30):
        net.step(HOUR, t_out=t_out, p_heat=p)
        assert lo <= net.t_air[0] <= hi


@settings(max_examples=50, deadline=None)
@given(t_out=temps, p=powers)
def test_property_convergence_to_steady_state(t_out, p):
    net = single_room(t_init_c=15.0)
    t_eq = net.steady_state(t_out=t_out, p_heat=p)[0]
    for _ in range(2000):
        net.step(HOUR, t_out=t_out, p_heat=p)
    assert net.t_air[0] == pytest.approx(t_eq, abs=0.1)


@settings(max_examples=30, deadline=None)
@given(p=powers)
def test_property_steady_state_monotone_in_power(p):
    net = single_room()
    assert net.steady_state(0.0, p_heat=p + 100.0)[0] > net.steady_state(0.0, p_heat=p)[0]
