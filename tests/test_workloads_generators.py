"""Tests for cloud, edge, alarm and heating workload generators."""

import numpy as np
import pytest

from repro.core.requests import EdgeMode, HeatingRequest
from repro.sim.calendar import DAY, HOUR
from repro.sim.rng import RngRegistry
from repro.workloads.alarms import AlarmStreamConfig, AlarmStreamGenerator
from repro.workloads.cloud import (
    QARNOT_2016_CAMPAIGN,
    CloudJobConfig,
    CloudJobGenerator,
    RenderCampaign,
)
from repro.workloads.edge import EdgeWorkloadConfig, EdgeWorkloadGenerator
from repro.workloads.heating import HeatingBehavior, HeatingRequestGenerator


def rng(seed=0, name="wl"):
    return RngRegistry(seed).stream(name)


# --------------------------------------------------------------------------- #
# cloud
# --------------------------------------------------------------------------- #
def test_cloud_generator_business_hours_bias():
    gen = CloudJobGenerator(rng(), CloudJobConfig(rate_per_hour=60.0))
    reqs = gen.generate(0.0, 5 * DAY)
    hours = np.array([(r.time / HOUR) % 24 for r in reqs])
    office = np.sum((hours >= 9) & (hours < 18))
    assert office > 0.6 * len(reqs)


def test_cloud_demand_distribution_mean():
    cfg = CloudJobConfig(rate_per_hour=200.0, mean_core_seconds=100.0, sigma_log=0.5)
    gen = CloudJobGenerator(rng(1), cfg)
    reqs = gen.generate(0.0, 10 * DAY)
    core_seconds = np.array([r.cycles / (cfg.ref_freq_ghz * 1e9) for r in reqs])
    assert np.mean(core_seconds) == pytest.approx(100.0, rel=0.25)
    assert all(1 <= r.cores <= cfg.max_cores for r in reqs)


def test_cloud_config_validation():
    with pytest.raises(ValueError):
        CloudJobConfig(mean_core_seconds=0.0)
    with pytest.raises(ValueError):
        CloudJobConfig(max_cores=0)


def test_render_campaign_published_stats():
    assert QARNOT_2016_CAMPAIGN.users == 1100
    assert QARNOT_2016_CAMPAIGN.frames == 600_000
    assert QARNOT_2016_CAMPAIGN.total_core_hours == 11_000_000.0
    assert QARNOT_2016_CAMPAIGN.mean_core_hours_per_frame == pytest.approx(18.33, abs=0.01)


def test_render_campaign_scaled_replay():
    camp = RenderCampaign(rng(2), scale=1e-4, duration_s=10 * DAY)
    reqs = camp.generate()
    assert len(reqs) == camp.n_frames == 60
    assert all(0.0 <= r.time < 10 * DAY for r in reqs)
    # per-frame demand averages near the published 18.3 core-hours
    ch = np.array([r.cycles / (camp.ref_freq_ghz * 1e9) / 3600.0 for r in reqs])
    assert np.mean(ch) == pytest.approx(18.33, rel=0.5)


def test_render_campaign_validation():
    with pytest.raises(ValueError):
        RenderCampaign(rng(), scale=0.0)
    with pytest.raises(ValueError):
        RenderCampaign(rng(), duration_s=0.0)


# --------------------------------------------------------------------------- #
# edge
# --------------------------------------------------------------------------- #
def test_edge_generator_basics():
    gen = EdgeWorkloadGenerator(rng(3), source="district-0/building-0")
    reqs = gen.generate(0.0, 2 * DAY)
    assert len(reqs) > 50
    assert all(r.source == "district-0/building-0" for r in reqs)
    assert all(r.deadline_s in (0.5, 2.0, 5.0) for r in reqs)
    assert all(r.mode is EdgeMode.INDIRECT for r in reqs)  # default direct_fraction=0


def test_edge_direct_fraction():
    cfg = EdgeWorkloadConfig(direct_fraction=1.0)
    gen = EdgeWorkloadGenerator(rng(4), source="b", config=cfg)
    reqs = gen.generate(0.0, DAY)
    assert all(r.mode is EdgeMode.DIRECT for r in reqs)


def test_edge_burst():
    gen = EdgeWorkloadGenerator(rng(5), source="b")
    burst = gen.generate_burst(100.0, n=10, spacing_s=0.1)
    assert len(burst) == 10
    assert burst[0].time == 100.0
    assert burst[-1].time == pytest.approx(100.9)


def test_edge_config_validation():
    with pytest.raises(ValueError):
        EdgeWorkloadConfig(deadline_classes=())
    with pytest.raises(ValueError):
        EdgeWorkloadConfig(deadline_classes=((0.0, 1.0),))
    with pytest.raises(ValueError):
        EdgeWorkloadConfig(direct_fraction=2.0)


# --------------------------------------------------------------------------- #
# alarms
# --------------------------------------------------------------------------- #
def test_alarm_stream_cadence():
    cfg = AlarmStreamConfig(n_devices=4, frame_period_s=1.0, alarm_rate_per_day=0.0)
    gen = AlarmStreamGenerator(rng(6), source="b", config=cfg)
    inf, conf = gen.generate(0.0, 60.0)
    assert conf == []
    assert len(inf) == pytest.approx(4 * 60, abs=4)  # 4 devices × 60 frames
    assert gen.frame_rate_hz() == 4.0
    # stream is time-sorted
    times = [r.time for r in inf]
    assert times == sorted(times)


def test_alarm_confirmations_sparse_and_heavy():
    cfg = AlarmStreamConfig(n_devices=2, alarm_rate_per_day=50.0)
    gen = AlarmStreamGenerator(rng(7), source="b", config=cfg)
    inf, conf = gen.generate(0.0, 2 * DAY)
    assert 20 < len(conf) < 300
    assert len(conf) < 0.01 * len(inf)
    assert conf[0].cycles > 10 * inf[0].cycles


def test_alarm_requests_privacy_tagged():
    gen = AlarmStreamGenerator(rng(8), source="b")
    inf, _ = gen.generate(0.0, 10.0)
    assert all(r.privacy_sensitive for r in inf)


def test_alarm_config_validation():
    with pytest.raises(ValueError):
        AlarmStreamConfig(n_devices=0)
    with pytest.raises(ValueError):
        AlarmStreamConfig(confirm_factor=0.5)


# --------------------------------------------------------------------------- #
# heating
# --------------------------------------------------------------------------- #
def test_heating_generator_daynight_transitions():
    gen = HeatingRequestGenerator(rng(9), rooms=("a", "b"))
    reqs = gen.generate(0.0, 3 * DAY)
    scheduled = [r for r in reqs if r.time % DAY in (6.5 * HOUR, 22.5 * HOUR)]
    assert len(scheduled) == 6  # 2 per day × 3 days
    assert all(isinstance(r, HeatingRequest) for r in reqs)
    times = [r.time for r in reqs]
    assert times == sorted(times)


def test_incentivized_hosts_keep_higher_setpoints():
    inc = HeatingRequestGenerator(rng(10), rooms=("a",), behavior=HeatingBehavior.INCENTIVIZED)
    cc = HeatingRequestGenerator(rng(10), rooms=("a",), behavior=HeatingBehavior.COST_CONSCIOUS)
    assert inc.mean_winter_setpoint() > cc.mean_winter_setpoint() + 1.0


def test_cost_conscious_tweaks_more_often():
    inc = HeatingRequestGenerator(rng(11), rooms=("a",), behavior=HeatingBehavior.INCENTIVIZED)
    cc = HeatingRequestGenerator(rng(11), rooms=("a",), behavior=HeatingBehavior.COST_CONSCIOUS)
    n_inc = len(inc.generate(0.0, 30 * DAY))
    n_cc = len(cc.generate(0.0, 30 * DAY))
    assert n_cc > n_inc


def test_single_room_never_collective():
    gen = HeatingRequestGenerator(rng(12), rooms=("solo",), collective_fraction=1.0)
    reqs = gen.generate(0.0, 30 * DAY)
    assert all(not r.collective for r in reqs)


def test_heating_generator_validation():
    with pytest.raises(ValueError):
        HeatingRequestGenerator(rng(), rooms=())
    with pytest.raises(ValueError):
        HeatingRequestGenerator(rng(), rooms=("a",), collective_fraction=1.5)
    gen = HeatingRequestGenerator(rng(), rooms=("a",))
    with pytest.raises(ValueError):
        gen.generate(10.0, 0.0)
