"""The shared BENCH_*.json envelope schema (benchmarks/bench_schema.py).

All four bench emitters and the CI perf-regression job agree on one
artifact shape so ``repro diff`` can compare any two captures and
``history.jsonl`` can accumulate the trajectory.  These tests pin the
contract: validation catches every malformed document, section merges
are order-independent, and history entries extract only timing-like
scalars.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))

import bench_schema  # noqa: E402


def test_envelope_builds_a_valid_document():
    doc = bench_schema.envelope(
        "runner", [{"serial_s": 1.5, "parallel_speedup": 2.0}],
        context={"seed": 7}, cpu_count=4, commit="abc1234")
    assert doc["schema_version"] == bench_schema.SCHEMA_VERSION == 1
    assert doc["bench"] == "runner"
    assert doc["commit"] == "abc1234"
    assert doc["cpu_count"] == 4
    assert doc["context"] == {"seed": 7}
    bench_schema.validate(doc)               # idempotent, no raise


def test_envelope_defaults_commit_and_cpu_count():
    doc = bench_schema.envelope("x", [])
    assert doc["commit"]                     # git sha or "unknown"
    assert doc["cpu_count"] >= 1


def test_sentinel_rows_are_allowed():
    doc = bench_schema.envelope(
        "runner", [{"parallel_speedup": "skipped_insufficient_cores"}])
    bench_schema.validate(doc)


@pytest.mark.parametrize("mutation, fragment", [
    ({"schema_version": 2}, "schema_version"),
    ({"bench": ""}, "bench"),
    ({"commit": None}, "commit"),
    ({"cpu_count": 0}, "cpu_count"),
    ({"cpu_count": True}, "cpu_count"),
    ({"rows": {"not": "a list"}}, "rows"),
    ({"rows": [{"nested": {"dict": 1}}]}, "scalar"),
    ({"rows": ["not a dict"]}, "rows[0]"),
    ({"context": None}, "context"),
    ({"surprise": 1}, "unexpected top-level"),
])
def test_validate_rejects_malformed_documents(mutation, fragment):
    doc = bench_schema.envelope("x", [{"a_s": 1.0}], cpu_count=2,
                                commit="abc")
    doc.update(mutation)
    with pytest.raises(ValueError, match=fragment.replace("[", r"\[")):
        bench_schema.validate(doc)


def test_validate_reports_all_problems_at_once():
    with pytest.raises(ValueError) as err:
        bench_schema.validate({"schema_version": 99, "rows": 3})
    message = str(err.value)
    for fragment in ("schema_version", "bench", "commit", "cpu_count",
                     "rows", "context"):
        assert fragment in message


def test_write_and_validate_file_round_trip(tmp_path):
    path = tmp_path / "BENCH_x.json"
    doc = bench_schema.envelope("x", [{"wall_s": 1.0}], commit="abc",
                                cpu_count=2)
    bench_schema.write_bench(path, doc)
    text = path.read_text(encoding="utf-8")
    assert text.endswith("\n")
    assert bench_schema.validate_file(path) == doc


def test_validate_file_names_the_offender(tmp_path):
    path = tmp_path / "BENCH_bad.json"
    path.write_text('{"schema_version": 0}', encoding="utf-8")
    with pytest.raises(ValueError, match="BENCH_bad.json"):
        bench_schema.validate_file(path)


def test_merge_section_is_order_independent(tmp_path):
    a = [{"n": 1, "wall_s": 1.0}]
    b = [{"n": 2, "wall_s": 2.0}]
    p1 = tmp_path / "one" / "BENCH_engine.json"
    p1.parent.mkdir()
    bench_schema.merge_section(p1, "engine", "sizes", a, {"ka": 1})
    bench_schema.merge_section(p1, "engine", "surrogate_sizes", b, {"kb": 2})
    p2 = tmp_path / "two" / "BENCH_engine.json"
    p2.parent.mkdir()
    bench_schema.merge_section(p2, "engine", "surrogate_sizes", b, {"kb": 2})
    bench_schema.merge_section(p2, "engine", "sizes", a, {"ka": 1})

    d1 = bench_schema.validate_file(p1)
    d2 = bench_schema.validate_file(p2)
    assert sorted((r["section"], r["n"]) for r in d1["rows"]) == \
        sorted((r["section"], r["n"]) for r in d2["rows"]) == \
        [("sizes", 1), ("surrogate_sizes", 2)]
    assert d1["context"] == d2["context"] == {"ka": 1, "kb": 2}


def test_merge_section_replaces_only_its_own_rows(tmp_path):
    path = tmp_path / "BENCH_engine.json"
    bench_schema.merge_section(path, "engine", "sizes", [{"n": 1}])
    bench_schema.merge_section(path, "engine", "other", [{"n": 2}])
    bench_schema.merge_section(path, "engine", "sizes", [{"n": 3}, {"n": 4}])
    doc = bench_schema.validate_file(path)
    assert sorted((r["section"], r["n"]) for r in doc["rows"]) == \
        [("other", 2), ("sizes", 3), ("sizes", 4)]


def test_merge_section_recovers_from_pre_schema_artifacts(tmp_path):
    path = tmp_path / "BENCH_engine.json"
    path.write_text('{"legacy": true}', encoding="utf-8")
    doc = bench_schema.merge_section(path, "engine", "sizes", [{"n": 1}])
    assert doc["rows"] == [{"n": 1, "section": "sizes"}]
    bench_schema.validate_file(path)


def test_history_entry_extracts_timing_like_scalars():
    doc = bench_schema.envelope("runner", [{
        "section": "sizes", "serial_s": 2.0, "parallel_speedup": 3.0,
        "points": 9, "byte_identical": True,
        "skipped": "skipped_insufficient_cores",
    }], commit="abc", cpu_count=4)
    entry = bench_schema.history_entry(doc, generated_at="2026-08-08T00:00:00")
    assert entry["bench"] == "runner"
    assert entry["commit"] == "abc"
    assert entry["rows"] == 1
    assert entry["generated_at"] == "2026-08-08T00:00:00"
    # timings carry measured numbers only — no counts, bools or sentinels
    assert entry["timings"] == {"sizes.serial_s": 2.0,
                                "sizes.parallel_speedup": 3.0}


def test_append_history_is_append_only(tmp_path):
    path = tmp_path / "history.jsonl"
    doc = bench_schema.envelope("x", [{"wall_s": 1.0}], commit="abc",
                                cpu_count=2)
    bench_schema.append_history(bench_schema.history_entry(doc), path)
    bench_schema.append_history(bench_schema.history_entry(doc), path)
    lines = [json.loads(line) for line in
             path.read_text(encoding="utf-8").splitlines()]
    assert len(lines) == 2
    assert all(line["bench"] == "x" for line in lines)


# --------------------------------------------------------------------------- #
# the CLI used by CI, and the committed artifacts themselves
# --------------------------------------------------------------------------- #
def test_cli_validates_and_appends_history(tmp_path, capsys):
    good = tmp_path / "BENCH_x.json"
    bench_schema.write_bench(good, bench_schema.envelope(
        "x", [{"wall_s": 1.0}], commit="abc", cpu_count=2))
    history = tmp_path / "history.jsonl"
    assert bench_schema.main(["--validate", "--append-history", str(history),
                              "--generated-at", "t0", str(good)]) == 0
    out = capsys.readouterr().out
    assert "ok" in out and "history +=" in out
    entry = json.loads(history.read_text(encoding="utf-8"))
    assert entry["generated_at"] == "t0"

    bad = tmp_path / "BENCH_bad.json"
    bad.write_text("{}", encoding="utf-8")
    assert bench_schema.main(["--validate", str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().err


def test_committed_bench_artifacts_conform():
    results = Path(__file__).resolve().parents[1] / "benchmarks" / "results"
    artifacts = sorted(results.glob("BENCH_*.json"))
    assert len(artifacts) >= 4               # engine, resilience, runner, service
    for path in artifacts:
        doc = bench_schema.validate_file(path)
        assert doc["rows"], f"{path.name} has no rows"
