"""TwinServer: REST endpoints, SSE stream, control plane, error paths."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.requests import reset_ids
from repro.service import ScenarioConfig, TwinConfig, TwinServer, build_twin


@pytest.fixture()
def served_twin():
    """A paused twin behind a real socket on an ephemeral port."""
    reset_ids()
    twin = build_twin(
        ScenarioConfig(duration_days=0.05, tail_days=0.01),
        TwinConfig(slice_s=300.0, telemetry_every_s=600.0, start_paused=True),
    )
    server = TwinServer(("127.0.0.1", 0), twin)
    thread = threading.Thread(target=server.serve_forever, daemon=True,
                              kwargs={"poll_interval": 0.05})
    thread.start()
    twin.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        yield twin, base
    finally:
        twin.stop()
        server.shutdown()
        server.server_close()


def get(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as r:
        return json.loads(r.read())


def post(base, path, body):
    req = urllib.request.Request(
        base + path, data=json.dumps(body).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=35) as r:
        return json.loads(r.read())


def test_healthz(served_twin):
    twin, base = served_twin
    h = get(base, "/healthz")
    assert h["status"] == "ok" and h["paused"] and not h["finished"]
    assert h["now"] == twin.scenario.t0


def test_rest_state_endpoints(served_twin):
    twin, base = served_twin
    assert get(base, "/api/state")["paused"]
    fleet = get(base, "/api/fleet")
    assert len(fleet["districts"]) == 2 and fleet["weather_override_c"] == 0.0
    assert len(get(base, "/api/servers")["servers"]) == 12
    assert "slos" in get(base, "/api/slo")
    assert "completeness" in get(base, "/api/spans?prefix=edge.&slowest=3")
    assert "series" in get(base, "/api/metrics")
    assert get(base, "/api/trace/tail?n=7")["records"] is not None


def test_dashboard_served(served_twin):
    _, base = served_twin
    with urllib.request.urlopen(base + "/", timeout=10) as r:
        page = r.read().decode("utf-8")
        assert r.headers["Content-Type"].startswith("text/html")
    assert "EventSource('/events')" in page
    assert "/api/state" in page


def test_unknown_paths_404(served_twin):
    _, base = served_twin
    for method, path in (("GET", "/api/nope"), ("POST", "/api/nope")):
        req = urllib.request.Request(base + path, method=method,
                                     data=b"{}" if method == "POST" else None)
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 404


def test_inject_and_control_round_trip(served_twin):
    twin, base = served_twin
    out = post(base, "/api/inject", {"flow": "edge", "deadline_s": 30.0})
    assert out["status"] == "injected" and out["request_id"].startswith("edge-")
    out = post(base, "/api/inject", {"flow": "cloud", "cycles": 1e10})
    assert out["request_id"].startswith("cloud-")
    assert twin.injected == {"heating": 0, "edge": 1, "cloud": 1}

    stepped = post(base, "/api/control", {"action": "step", "dt": 600.0})
    assert stepped["now"] == twin.scenario.t0 + 600.0
    post(base, "/api/control", {"action": "resume"})
    assert not get(base, "/api/state")["paused"]
    paused = post(base, "/api/control", {"action": "pause"})
    assert paused["status"] == "paused"


def test_scenario_mutation_round_trip(served_twin):
    twin, base = served_twin
    out = post(base, "/api/scenario",
               {"weather_delta_c": -5.0, "grid_cap_w": 1500.0})
    assert sorted(out["applied"]) == ["grid_cap_w", "weather_delta_c"]
    assert twin.mw.weather.override_delta_c == -5.0
    assert twin.mw.smartgrid.grid_cap_w == 1500.0
    out = post(base, "/api/scenario", {"kill_district": 1})
    assert out["detail"]["district"] == 1
    assert len(out["detail"]["servers_killed"]) == 6


def test_bad_requests_are_400_not_500(served_twin):
    _, base = served_twin
    cases = [
        ("/api/inject", {"flow": "quantum"}),
        ("/api/inject", {"flow": "edge", "source": "no-such-building"}),
        ("/api/scenario", {}),
        ("/api/scenario", {"kill_district": 99}),
        ("/api/control", {"action": "warp"}),
    ]
    for path, body in cases:
        with pytest.raises(urllib.error.HTTPError) as err:
            post(base, path, body)
        assert err.value.code == 400, (path, body)
    # malformed JSON body
    req = urllib.request.Request(base + "/api/inject", data=b"not json{",
                                 method="POST")
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(req, timeout=10)
    assert err.value.code == 400


def test_sse_stream_bounded_and_well_formed(served_twin):
    twin, base = served_twin
    post(base, "/api/control", {"action": "resume"})
    with urllib.request.urlopen(base + "/events?max_events=8",
                                timeout=60) as r:
        assert r.headers["Content-Type"] == "text/event-stream"
        raw = r.read().decode("utf-8")
    frames = [f for f in raw.split("\n\n") if f.strip() and
              not f.startswith(":")]
    assert len(frames) == 8
    kinds, ids = [], []
    for frame in frames:
        lines = dict(line.split(": ", 1) for line in frame.splitlines())
        kinds.append(lines["event"])
        ids.append(int(lines["id"]))
        json.loads(lines["data"])  # every payload is valid JSON
    assert ids == sorted(ids)
    assert set(kinds) <= {"run.started", "run.paused", "run.finished",
                          "state", "metrics", "slo.burn_rate", "slo.breach",
                          "trace", "command.applied", "command.failed"}


def test_sse_closes_when_run_finishes(served_twin):
    twin, base = served_twin
    done = {}

    def consume():
        # unbounded stream opened while the run is live: it must deliver
        # the lifecycle tail and then close on its own once the run is done
        with urllib.request.urlopen(base + "/events", timeout=60) as r:
            done["raw"] = r.read().decode("utf-8")

    reader = threading.Thread(target=consume, daemon=True)
    reader.start()
    post(base, "/api/control", {"action": "resume"})
    assert twin.join(timeout=60)
    reader.join(timeout=30)
    assert not reader.is_alive(), "SSE stream did not close after the run"
    assert "event: run.finished" in done["raw"]


def test_shutdown_endpoint_flags_server(served_twin):
    twin, base = served_twin
    out = post(base, "/api/shutdown", {})
    assert out["status"] == "shutting down"
