"""DigitalTwin: lifecycle, control API, command queue, telemetry, views."""

import pytest

from repro.core.requests import EdgeRequest, reset_ids
from repro.sim.calendar import HOUR
from repro.service import ScenarioConfig, TwinConfig, TwinError, build_twin


def tiny_twin(**twin_kwargs) -> object:
    """A twin over a few sim-hours — fast enough for unit tests."""
    cfg = dict(slice_s=300.0, telemetry_every_s=600.0)
    cfg.update(twin_kwargs)
    return build_twin(ScenarioConfig(duration_days=0.05, tail_days=0.01),
                      TwinConfig(**cfg))


@pytest.fixture(autouse=True)
def _fresh_request_ids():
    reset_ids()
    yield


def test_runs_to_completion_and_publishes_lifecycle():
    twin = tiny_twin()
    sub = twin.bus.subscribe()
    twin.start()
    assert twin.join(timeout=60)
    assert twin.finished and twin.now == twin.scenario.t_end
    kinds = set()
    while not sub.events.empty():
        kinds.add(sub.events.get_nowait().kind)
    assert {"run.started", "state", "metrics", "run.finished"} <= kinds
    twin.stop()


def test_start_twice_rejected():
    twin = tiny_twin(start_paused=True)
    twin.start()
    with pytest.raises(TwinError):
        twin.start()
    twin.stop()


def test_pause_resume_step():
    twin = tiny_twin(start_paused=True)
    twin.start()
    t0 = twin.now
    assert twin.paused
    # step advances exactly dt on the engine thread
    now = twin.step(600.0)
    assert now == t0 + 600.0 and twin.now == t0 + 600.0
    # step requires a paused twin
    twin.resume()
    assert twin.join(timeout=60)
    with pytest.raises(TwinError):
        twin.step(60.0)
    twin.stop()


def test_pause_at_holds_at_exact_sim_time():
    twin = tiny_twin(start_paused=True)
    target = twin.scenario.t0 + HOUR  # inside the 0.06-sim-day horizon
    twin.pause_at(target)
    twin.start()
    twin.resume()
    deadline = 30.0
    import time
    end = time.monotonic() + deadline
    while not twin.paused and time.monotonic() < end:
        time.sleep(0.01)
    assert twin.paused and twin.now == target
    twin.resume()
    assert twin.join(timeout=60)
    twin.stop()


def test_command_in_the_past_rejected():
    twin = tiny_twin(start_paused=True)
    twin.start()
    with pytest.raises(TwinError):
        twin.submit("x", lambda mw: None, at=twin.now - 1.0)
    twin.stop()


def test_command_after_finish_rejected():
    twin = tiny_twin()
    twin.start()
    assert twin.join(timeout=60)
    with pytest.raises(TwinError):
        twin.submit("late", lambda mw: None)
    twin.stop()


def test_command_error_propagates_to_caller():
    twin = tiny_twin(start_paused=True)
    twin.start()

    def boom(mw):
        raise ValueError("scenario said no")

    with pytest.raises(ValueError, match="scenario said no"):
        twin.submit("boom", boom, wait=10.0)
    # the engine thread survives a failed command
    twin.resume()
    assert twin.join(timeout=60)
    twin.stop()


def test_inject_request_object_and_factory():
    twin = tiny_twin(start_paused=True)
    twin.start()
    at = twin.now + HOUR
    source = next(iter(twin.mw.buildings))
    req = EdgeRequest(cycles=1e8, time=at, deadline_s=30.0, source=source)
    # pinned in the future: stays queued until the engine reaches `at`
    cmd = twin.inject_request(req, "edge", at=at)
    assert not cmd.done.is_set()

    twin.inject_request(
        lambda now: EdgeRequest(cycles=1e8, time=now, deadline_s=30.0,
                                source=source),
        "edge", wait=10.0)
    assert twin.injected["edge"] == 1  # factory one applied immediately
    twin.resume()
    assert twin.join(timeout=60)
    assert twin.injected["edge"] == 2  # pinned one applied at its time
    assert cmd.done.is_set() and cmd.result == req.request_id
    twin.stop()


def test_scenario_mutations_apply_on_engine_thread():
    twin = tiny_twin(start_paused=True)
    twin.start()
    twin.set_weather_override(-7.5, wait=10.0)
    twin.set_grid_cap(2000.0, wait=10.0)
    killed = twin.kill_district(0, wait=10.0)
    assert twin.mw.weather.override_delta_c == -7.5
    assert twin.mw.smartgrid.grid_cap_w == 2000.0
    assert killed.result["district"] == 0
    assert len(killed.result["servers_killed"]) == 6
    assert not twin.mw.edge_gateways[0].master_up
    twin.resume()
    assert twin.join(timeout=60)
    twin.stop()


def test_read_views_are_json_shaped():
    import json

    twin = tiny_twin()
    twin.start()
    assert twin.join(timeout=60)
    state = twin.state_dict()
    assert state["finished"] and 0.999 <= state["progress"] <= 1.0
    fleet = twin.fleet_dict()
    assert len(fleet["districts"]) == 2
    assert fleet["edge_completed"] > 0
    servers = twin.servers_dict()
    assert len(servers) == 12
    assert all(s["cores"] >= s["busy_cores"] for s in servers)
    slo = twin.slo_dict()
    assert {r["name"] for r in slo["slos"]} >= {"edge-deadline"}
    spans = twin.spans_dict()
    assert spans["traces"] > 0
    # every view must survive strict JSON round-tripping
    for view in (state, fleet, {"s": servers}, slo, spans,
                 twin.metrics_dict(), twin.trace_tail_dict()):
        json.loads(json.dumps(view, sort_keys=True))
    twin.stop()


def test_state_dict_surfaces_surrogate_budget(monkeypatch):
    """With the surrogate kernel the twin's /api/state (and hence every SSE
    ``state`` event) carries the tier's error-budget status."""
    import json

    monkeypatch.setenv("REPRO_KERNEL", "surrogate")
    twin = tiny_twin()
    twin.start()
    assert twin.join(timeout=60)
    state = twin.state_dict()
    sur = state["surrogate"]
    assert set(sur) >= {"switched", "live_districts", "aggregated_districts",
                        "max_drift_c", "drift_budget_share", "budget"}
    assert sur["budget"]["district_mean_temp_tol_c"] > 0
    json.loads(json.dumps(state, sort_keys=True))
    twin.stop()


def test_state_dict_omits_surrogate_for_vector_kernel(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    twin = tiny_twin()
    twin.start()
    assert twin.join(timeout=60)
    assert "surrogate" not in twin.state_dict()
    twin.stop()
