"""Step-wise runs are byte-identical to batch runs (DESIGN.md §2.15).

The service layer's whole value rests on one guarantee: driving the engine
in slices — pausing, resuming, stepping, injecting commands at exact
simulated times — produces the *same bytes* as the straight-through batch
run.  These tests pin that guarantee at three levels: the raw engine
(``step_until`` / ``iter_run``), whole experiments (F3, one A6 churn cell),
and the service API itself (injection / mutation through a DigitalTwin vs
the equivalent scripted run).
"""

import pytest

from repro.core.faults import FaultInjector
from repro.core.requests import EdgeRequest, reset_ids
from repro.experiments import a6_churn, f3_three_flows
from repro.obs import Observability
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import RingTracer
from repro.service import (
    DigitalTwin,
    ScenarioConfig,
    TwinConfig,
    build_scenario,
)
from repro.sim.calendar import DAY, HOUR


@pytest.fixture(autouse=True)
def _fresh_request_ids():
    reset_ids()
    yield


def _result_fingerprint(result):
    """Exact bytes of an ExperimentResult: rendered text + repr'd floats."""
    return result.text + "\n" + repr(sorted(result.data.items()))


# ---------------------------------------------------------------------- #
# experiment level: F3 and one A6 churn cell
# ---------------------------------------------------------------------- #
def test_f3_step_until_slices_match_batch():
    reset_ids()
    batch = f3_three_flows.run()

    reset_ids()
    mw, t0, t1, workloads = f3_three_flows.build()
    end = t1 + 0.2 * DAY
    # odd max_events so slice boundaries land mid-burst, not on round numbers
    while mw.engine.step_until(end, max_events=997) == 997:
        pass
    sliced = f3_three_flows.finish(mw, workloads)

    assert _result_fingerprint(sliced) == _result_fingerprint(batch)


def test_f3_iter_run_generator_matches_batch():
    reset_ids()
    batch = f3_three_flows.run()

    reset_ids()
    mw, t0, t1, workloads = f3_three_flows.build()
    ticks = 0
    for now, executed in mw.engine.iter_run(t1 + 0.2 * DAY, max_events=1009):
        ticks += 1
    assert ticks > 1, "horizon reached in one slice — not a step-wise test"
    stepped = f3_three_flows.finish(mw, workloads)

    assert _result_fingerprint(stepped) == _result_fingerprint(batch)


def test_f3_pause_resume_time_slices_match_batch():
    reset_ids()
    batch = f3_three_flows.run()

    reset_ids()
    mw, t0, t1, workloads = f3_three_flows.build()
    end = t1 + 0.2 * DAY
    # pause/resume every 37 simulated minutes (a boundary that never aligns
    # with thermal ticks or workload bursts)
    t = t0
    while t < end:
        t = min(t + 37 * 60.0, end)
        mw.run_until(t)
    paused = f3_three_flows.finish(mw, workloads)

    assert _result_fingerprint(paused) == _result_fingerprint(batch)


def test_a6_churn_cell_sliced_matches_batch():
    # a representative resilience cell: stochastic churn, retry recovery
    mtbf_s = 8 * 3600.0
    recovery = a6_churn.BUNDLES["retry"]

    reset_ids()
    straight = a6_churn._run_cell(101, mtbf_s, recovery)

    reset_ids()
    mw, t0, edge, cloud = a6_churn._build_cell(101, mtbf_s, recovery)
    end = t0 + DAY + 2 * HOUR
    t = t0
    while t < end:
        t = min(t + 53 * 60.0, end)  # 53-minute pause/resume slices
        mw.run_until(t)
    sliced = a6_churn._finish_cell(mw, edge, cloud)

    assert repr(sorted(straight.items())) == repr(sorted(sliced.items()))


# ---------------------------------------------------------------------- #
# service level: twin commands vs the equivalent scripted run
# ---------------------------------------------------------------------- #
def _outcome(mw, probe_req):
    """Byte-comparable end state of a served/scripted city."""
    return {
        "energy_j": mw.fleet_energy_j(),
        "edge_completed": sorted(r.request_id for r in mw.completed_edge()),
        "edge_expired": sorted(r.request_id for r in mw.expired_edge()),
        "cloud_completed": sorted(r.request_id for r in mw.completed_cloud()),
        "probe": None if probe_req is None else (
            probe_req.status.value, probe_req.completed_at,
            probe_req.executed_on),
        "events": mw.engine.events_executed,
    }


def _obs():
    return Observability(tracer=RingTracer(capacity=65536),
                         registry=MetricsRegistry())


SCEN = ScenarioConfig(duration_days=0.15, tail_days=0.05)


def _mutate(mw, district):
    """The scripted twin-equivalent mutation: hard district kill."""
    inj = FaultInjector(mw)
    inj.fail_master(district)
    for server in mw.clusters[district].workers:
        if not server.failed:
            inj.crash_server(server.name, hard=True)


def test_service_injection_matches_scripted_run():
    t_inject = None  # resolved from the scenario below

    # --- scripted reference: plain run_until calls, no threads ---------- #
    reset_ids()
    ref = build_scenario(SCEN, obs=_obs())
    t_inject = ref.t0 + 2 * HOUR
    t_kill = ref.t0 + 3 * HOUR
    source = next(iter(ref.mw.buildings))
    ref.mw.run_until(t_inject)
    ref_req = EdgeRequest(cycles=3e8, time=t_inject, deadline_s=60.0,
                          source=source)
    ref.mw.inject([ref_req])
    ref.mw.run_until(t_kill)
    _mutate(ref.mw, 1)
    ref.mw.run_until(ref.t_end)
    expected = _outcome(ref.mw, ref_req)

    # --- served run: same operations through the DigitalTwin API ------- #
    reset_ids()
    obs = _obs()
    scenario = build_scenario(SCEN, obs=obs)
    twin = DigitalTwin(scenario, obs,
                       TwinConfig(slice_s=300.0, telemetry_every_s=1800.0,
                                  start_paused=True))
    twin_req = EdgeRequest(cycles=3e8, time=t_inject, deadline_s=60.0,
                           source=source)
    assert twin_req.request_id == ref_req.request_id
    twin.inject_request(twin_req, "edge", at=t_inject)
    twin.kill_district(1, at=t_kill)
    twin.start()
    twin.resume()
    assert twin.join(timeout=120)
    got = _outcome(twin.mw, twin_req)
    twin.stop()

    assert repr(sorted(got.items())) == repr(sorted(expected.items()))


def test_service_pause_points_do_not_change_outcome():
    # same scenario driven with different slice sizes and a mid-run pause:
    # wall-clock scheduling must never leak into simulated results
    outcomes = []
    for slice_s in (120.0, 1700.0):
        reset_ids()
        obs = _obs()
        scenario = build_scenario(SCEN, obs=obs)
        twin = DigitalTwin(scenario, obs,
                           TwinConfig(slice_s=slice_s,
                                      telemetry_every_s=3600.0,
                                      start_paused=True))
        twin.pause_at(scenario.t0 + 2 * HOUR)
        twin.start()
        twin.resume()
        # wait for the scheduled pause, then resume and finish
        import time
        end = time.monotonic() + 60
        while not twin.paused and time.monotonic() < end:
            time.sleep(0.005)
        assert twin.paused and twin.now == scenario.t0 + 2 * HOUR
        twin.resume()
        assert twin.join(timeout=120)
        outcomes.append(_outcome(twin.mw, None))
        twin.stop()

    a, b = outcomes
    a.pop("probe"), b.pop("probe")
    assert repr(sorted(a.items())) == repr(sorted(b.items()))
