"""EventBus: fan-out, bounded queues, drop-oldest overflow."""

import threading

import pytest

from repro.service.events import EventBus, drain


def test_publish_reaches_every_subscriber():
    bus = EventBus()
    a, b = bus.subscribe(), bus.subscribe()
    bus.publish("state", {"now": 1.0})
    bus.publish("metrics", {"now": 2.0})
    for sub in (a, b):
        got = drain(sub, timeout=0.1)
        assert [(k, d["now"]) for k, d, _ in got] == [
            ("state", 1.0), ("metrics", 2.0)]


def test_seq_is_bus_wide_and_monotonic():
    bus = EventBus()
    sub = bus.subscribe()
    for i in range(5):
        bus.publish("tick", {"i": i})
    seqs = [seq for _, _, seq in drain(sub, timeout=0.1, max_events=10)]
    assert seqs == sorted(seqs) and len(set(seqs)) == 5


def test_unsubscribed_queue_stops_receiving():
    bus = EventBus()
    sub = bus.subscribe()
    bus.publish("a", {})
    bus.unsubscribe(sub)
    bus.publish("b", {})
    got = drain(sub, timeout=0.05, max_events=10)
    assert [k for k, _, _ in got] == ["a"]
    assert bus.subscriber_count == 0


def test_overflow_drops_oldest_never_blocks():
    bus = EventBus(max_queue=3)
    sub = bus.subscribe()
    for i in range(10):
        bus.publish("tick", {"i": i})
    got = drain(sub, timeout=0.1, max_events=10)
    # the newest 3 survive; 7 were shed
    assert [d["i"] for _, d, _ in got] == [7, 8, 9]
    assert sub.dropped == 7 and bus.dropped == 7
    # seq gaps reveal the loss to a client
    seqs = [seq for _, _, seq in got]
    assert seqs == [7, 8, 9]


def test_slow_subscriber_does_not_affect_siblings():
    bus = EventBus(max_queue=2)
    slow, fast = bus.subscribe(), bus.subscribe()
    for i in range(6):
        bus.publish("tick", {"i": i})
        drain(fast, timeout=0.05)  # fast keeps up
    assert fast.dropped == 0
    assert slow.dropped == 4


def test_publish_from_many_threads_is_safe():
    bus = EventBus(max_queue=10_000)
    sub = bus.subscribe()

    def worker(tag):
        for i in range(100):
            bus.publish("tick", {"tag": tag, "i": i})

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    total = 0
    while True:
        got = drain(sub, timeout=0.05, max_events=1000)
        if not got:
            break
        total += len(got)
    assert total == 400 and bus.published == 400


def test_bad_capacity_rejected():
    with pytest.raises(ValueError):
        EventBus(max_queue=0)
