"""Tests for low-power IoT protocols and duty-cycle gating."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.lowpower import ENOCEAN, LORA, SIGFOX, ZIGBEE, LowPowerLink, LowPowerProtocol


def test_published_parameters():
    assert ZIGBEE.datarate_bps == 250_000.0
    assert LORA.duty_cycle == 0.01
    assert SIGFOX.datarate_bps == 100.0
    assert SIGFOX.max_payload_bytes == 12
    assert ENOCEAN.max_payload_bytes == 14


def test_protocol_validation():
    with pytest.raises(ValueError):
        LowPowerProtocol("x", 0.0, 0.01, 10, 1.0)
    with pytest.raises(ValueError):
        LowPowerProtocol("x", 100.0, 0.01, 10, 0.0)
    with pytest.raises(ValueError):
        LowPowerProtocol("x", 100.0, 0.01, 0, 1.0)


def test_fragmentation():
    link = LowPowerLink(SIGFOX)
    assert link.fragments(12) == 1
    assert link.fragments(13) == 2
    assert link.fragments(0) == 1
    with pytest.raises(ValueError):
        link.fragments(-1)


def test_zigbee_fast_delivery():
    link = LowPowerLink(ZIGBEE)
    d = link.delivery_delay(0.0, 50)
    assert d < 0.05  # tens of ms


def test_sigfox_slow_delivery():
    link = LowPowerLink(SIGFOX)
    d = link.delivery_delay(0.0, 12)
    assert d > 2.0  # seconds-scale


def test_latency_ladder_matches_protocol_speeds():
    msgs = 12
    delays = {
        p.name: LowPowerLink(p).delivery_delay(0.0, msgs)
        for p in (ZIGBEE, ENOCEAN, LORA, SIGFOX)
    }
    assert delays["zigbee"] < delays["lora"] < delays["sigfox"]
    assert delays["enocean"] < delays["lora"]


def test_duty_cycle_gates_successive_sends():
    link = LowPowerLink(LORA)
    t1 = link.send(0.0, 50)
    t2 = link.send(0.0, 50)  # immediately again: must wait out the silence
    assert t2 > t1
    air = link.airtime_s(50)
    # the second send starts no earlier than air/duty after the first start
    assert t2 - t1 >= air * (1.0 / LORA.duty_cycle - 1.0) - 1e-9


def test_no_gate_when_duty_is_one():
    link = LowPowerLink(ZIGBEE)
    t1 = link.send(0.0, 50)
    t2 = link.send(0.0, 50)
    assert t2 - t1 == pytest.approx(link.airtime_s(50))


def test_duty_budget_recovers_over_time():
    link = LowPowerLink(LORA)
    link.send(0.0, 50)
    gap = link.next_free_time
    # sending after the silence window is not delayed further
    t = link.send(gap + 1.0, 50)
    assert t == pytest.approx(gap + 1.0 + LORA.base_latency_s + link.airtime_s(50))


def test_max_message_rate_consistent_with_duty():
    link = LowPowerLink(LORA)
    rate = link.max_message_rate_hz(50)
    assert rate == pytest.approx(LORA.duty_cycle / link.airtime_s(50))


def test_sigfox_daily_budget_roughly_140_messages():
    """Sigfox's famous ~140 msgs/day budget emerges from the 1% duty cycle."""
    link = LowPowerLink(SIGFOX)
    per_day = link.max_message_rate_hz(12) * 86400.0
    assert 100 < per_day < 400


def test_airtime_accounting():
    link = LowPowerLink(ZIGBEE)
    link.send(0.0, 100)
    link.send(1.0, 100)
    assert link.messages_sent == 2
    assert link.airtime_used_s > 0


@settings(max_examples=50, deadline=None)
@given(size=st.integers(min_value=0, max_value=5000), start=st.floats(min_value=0, max_value=1e6))
def test_property_delivery_never_before_send(size, start):
    link = LowPowerLink(LORA)
    t = link.send(start, size)
    assert t >= start + LORA.base_latency_s


@settings(max_examples=30, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=500), min_size=2, max_size=10))
def test_property_sends_are_serialised(sizes):
    """Deliveries from one device are strictly increasing in time."""
    link = LowPowerLink(SIGFOX)
    times = [link.send(0.0, s) for s in sizes]
    assert all(a < b for a, b in zip(times, times[1:]))
