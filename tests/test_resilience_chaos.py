"""Randomized fault chaos: seeded crash/recover/partition storms (§III-C).

A seeded planner generates a legal but adversarial fault schedule — server
crashes and repairs, WAN partitions, master outages — and replays it against
a live city under mixed load.  The suite then checks the conservation
invariants the middleware must hold under *any* fault interleaving:

* no worker ever ends up with negative (or over-capacity) free cores;
* no request is lost (every finished request has exactly one terminal
  record) and none is duplicated;
* the whole scenario is byte-identical when re-run with the same seed.
"""

import random
from collections import Counter

from repro.core.faults import FaultInjector
from repro.core.middleware import DF3Middleware, MiddlewareConfig
from repro.core.requests import CloudRequest, EdgeRequest, RequestStatus
from repro.sim.calendar import DAY, HOUR

GHZ = 1e9
T0 = 10 * DAY
N_DISTRICTS = 2
STORM_S = 2 * HOUR  # faults fire in [T0, T0 + STORM_S); then everything heals


def plan_faults(server_names, seed):
    """Seeded, state-aware fault schedule: every op is legal when it fires."""
    rng = random.Random(seed)
    up, down = set(server_names), set()
    wan_up = True
    masters_up = set(range(N_DISTRICTS))
    ops, t = [], T0
    while True:
        t += rng.uniform(20.0, 180.0)
        if t >= T0 + STORM_S:
            return ops
        roll = rng.random()
        if roll < 0.40 and up:
            s = rng.choice(sorted(up))
            up.discard(s), down.add(s)
            ops.append((t, "crash", s))
        elif roll < 0.70 and down:
            s = rng.choice(sorted(down))
            down.discard(s), up.add(s)
            ops.append((t, "recover", s))
        elif roll < 0.85:
            ops.append((t, "wan_down" if wan_up else "wan_up", None))
            wan_up = not wan_up
        else:
            d = rng.randrange(N_DISTRICTS)
            if d in masters_up:
                masters_up.discard(d)
                ops.append((t, "master_down", d))
            else:
                masters_up.add(d)
                ops.append((t, "master_up", d))


def run_chaos(seed=17):
    mw = DF3Middleware(MiddlewareConfig(
        n_districts=N_DISTRICTS, buildings_per_district=1, rooms_per_building=2,
        dc_nodes=2, seed=3, start_time=T0, enable_filler=False))
    fi = FaultInjector(mw)
    names = [w.name for d in sorted(mw.clusters) for w in mw.clusters[d].workers]

    dispatch = {
        "crash": lambda s: fi.crash_server(s, hard=True),
        "recover": fi.recover_server,
        "wan_down": lambda _: fi.partition_wan(),
        "wan_up": lambda _: fi.heal_wan(),
        "master_down": fi.fail_master,
        "master_up": fi.restore_master,
    }
    for t, op, arg in plan_faults(names, seed):
        mw.engine.schedule_at(t, lambda op=op, arg=arg: dispatch[op](arg))

    edge_reqs = [
        EdgeRequest(cycles=2 * GHZ, time=T0 + 30.0 + 150.0 * i, deadline_s=120.0,
                    source=f"district-{i % N_DISTRICTS}/building-0",
                    input_bytes=2e3)
        for i in range(40)
    ]
    cloud_reqs = [CloudRequest(cycles=2e12, time=T0 + 300.0 + 700.0 * i, cores=2)
                  for i in range(8)]
    mw.inject(edge_reqs)
    mw.inject(cloud_reqs)

    mw.run_until(T0 + STORM_S)
    for s in sorted(fi.down_servers):
        fi.recover_server(s)
    if fi.wan_partitioned:
        fi.heal_wan()
    for d in range(N_DISTRICTS):
        if fi.master_is_down(d):
            fi.restore_master(d)
    mw.run_until(T0 + STORM_S + HOUR)
    return mw, fi, edge_reqs, cloud_reqs


def signature(mw, fi, edge_reqs, cloud_reqs):
    # request_id is a process-global counter, so reruns shift it: compare the
    # requests positionally, not by id
    return (
        tuple((r.status.value, r.completed_at, r.executed_on)
              for r in edge_reqs + cloud_reqs),
        tuple(fi.log.events),
        tuple(w.free_cores for d in sorted(mw.clusters)
              for w in mw.clusters[d].workers),
    )


def test_chaos_invariants_hold():
    mw, fi, edge_reqs, cloud_reqs = run_chaos()
    assert fi.log.server_crashes > 0  # the storm actually stormed

    # capacity conservation: cores never go negative or over capacity
    for d in sorted(mw.clusters):
        for w in mw.clusters[d].workers:
            assert 0 <= w.free_cores <= w.n_cores
            assert w.enabled and not w.failed  # everything healed

    # request conservation: exactly one terminal record per finished request
    edge_records = Counter()
    for sched in mw.schedulers.values():
        for r in sched.completed_edge:
            edge_records[r.request_id] += 1
        for r in sched.expired_edge:
            edge_records[r.request_id] += 1
    assert all(n == 1 for n in edge_records.values())
    for r in edge_reqs:
        assert r.finished  # nothing is stuck after the heal + drain tail
        assert edge_records[r.request_id] == 1

    cloud_records = Counter()
    for sched in mw.schedulers.values():
        for r in sched.completed_cloud:
            cloud_records[r.request_id] += 1
    if mw.offloader.datacenter is not None:
        for r in getattr(mw.offloader, "completed", []):
            cloud_records[r.request_id] += 1
    for r in cloud_reqs:
        assert r.status is RequestStatus.COMPLETED
        assert cloud_records[r.request_id] == 1


def test_chaos_rerun_is_byte_identical():
    assert signature(*run_chaos(seed=23)) == signature(*run_chaos(seed=23))


def test_chaos_seed_changes_the_storm():
    assert signature(*run_chaos(seed=23)) != signature(*run_chaos(seed=24))


# --------------------------------------------------------------------------- #
# cancel-on-start cloning under the same storms
# --------------------------------------------------------------------------- #
def run_chaos_cancel_on_start(seed=17):
    """The fault storm against a city whose edge flow is cancel-on-start
    cloned (every request below the threshold spawns a speculative sibling
    that must be cancelled the instant the other member starts)."""
    from repro.core.resilience import (
        DetectorConfig,
        RecoveryConfig,
        ResilienceConfig,
    )

    res = ResilienceConfig(
        detector=DetectorConfig(heartbeat_interval_s=1.0, timeout_s=2.5),
        recovery=RecoveryConfig(retry=True, clone=True,
                                clone_deadline_threshold_s=150.0,
                                clone_cancel_on="start"),
        enable_churn=False,  # the planner below is the only fault source
    )
    mw = DF3Middleware(MiddlewareConfig(
        n_districts=N_DISTRICTS, buildings_per_district=1, rooms_per_building=2,
        dc_nodes=2, seed=3, start_time=T0, enable_filler=False, resilience=res))
    rt = mw.resilience
    names = [w.name for d in sorted(mw.clusters) for w in mw.clusters[d].workers]

    # faults route through the runtime hooks (detection-gated salvage), the
    # same entry points the stochastic churn model uses
    dispatch = {
        "crash": rt.on_server_failure,
        "recover": rt.on_server_recovery,
        "wan_down": lambda _: rt.on_wan_down(),
        "wan_up": lambda _: rt.on_wan_up(),
        "master_down": rt.on_master_failure,
        "master_up": rt.on_master_recovery,
    }
    for t, op, arg in plan_faults(names, seed):
        mw.engine.schedule_at(t, lambda op=op, arg=arg: dispatch[op](arg))

    edge_reqs = [
        EdgeRequest(cycles=2 * GHZ, time=T0 + 30.0 + 150.0 * i, deadline_s=120.0,
                    source=f"district-{i % N_DISTRICTS}/building-0",
                    input_bytes=2e3)
        for i in range(40)
    ]
    mw.inject(edge_reqs)

    mw.run_until(T0 + STORM_S)
    for s in sorted(rt.injector.down_servers):
        rt.on_server_recovery(s)
    if rt.injector.wan_partitioned:
        rt.on_wan_up()
    for d in range(N_DISTRICTS):
        if rt.injector.master_is_down(d):
            rt.on_master_recovery(d)
    mw.run_until(T0 + STORM_S + HOUR)
    return mw, rt, edge_reqs


def cs_signature(mw, rt, edge_reqs):
    log = rt.log
    return (
        tuple((r.status.value, r.completed_at, r.executed_on)
              for r in edge_reqs),
        (log.server_failures, log.clones_spawned, log.clone_wins,
         log.clone_waste_cycles, log.failure_waste_cycles,
         tuple(sorted(log.policy_decisions.items()))),
        tuple(w.free_cores for d in sorted(mw.clusters)
              for w in mw.clusters[d].workers),
    )


def test_cancel_on_start_chaos_invariants():
    mw, rt, edge_reqs = run_chaos_cancel_on_start()
    assert rt.log.server_failures > 0
    assert rt.log.clones_spawned == len(edge_reqs)  # all below the threshold

    # exactly-once completion per *logical* request: one terminal record per
    # primary, and no clone id ever reaches a terminal ledger
    records = Counter()
    for sched in mw.schedulers.values():
        for r in sched.completed_edge:
            records[r.request_id] += 1
        for r in sched.expired_edge:
            records[r.request_id] += 1
    assert not any(rid.endswith("#clone") for rid in records)
    for r in edge_reqs:
        assert r.finished
        assert records[r.request_id] == 1

    # no orphaned sibling holds cores after cancellation, and capacity
    # conservation held through every crash/cancel interleaving
    for d in sorted(mw.clusters):
        for w in mw.clusters[d].workers:
            assert 0 <= w.free_cores <= w.n_cores
            assert w.free_cores == w.n_cores  # everything drained post-heal
            assert not any(t.task_id.endswith("#clone")
                           for t in w.running_tasks)

    # cancel-on-start means the sibling never burned cycles
    assert rt.log.clone_waste_cycles == 0.0
    assert rt.log.policy_decisions["cancel_sibling"] >= 1


def test_cancel_on_start_chaos_rerun_is_byte_identical():
    assert (cs_signature(*run_chaos_cancel_on_start(seed=23))
            == cs_signature(*run_chaos_cancel_on_start(seed=23)))


def test_cancel_on_start_chaos_seed_changes_the_storm():
    assert (cs_signature(*run_chaos_cancel_on_start(seed=23))
            != cs_signature(*run_chaos_cancel_on_start(seed=24)))
