"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError


def test_events_run_in_time_order():
    eng = Engine()
    order = []
    eng.schedule(5.0, lambda: order.append("b"))
    eng.schedule(1.0, lambda: order.append("a"))
    eng.schedule(9.0, lambda: order.append("c"))
    eng.run_until(10.0)
    assert order == ["a", "b", "c"]
    assert eng.now == 10.0


def test_simultaneous_events_stable_insertion_order():
    eng = Engine()
    order = []
    for i in range(20):
        eng.schedule(3.0, lambda i=i: order.append(i))
    eng.run_until(3.0)
    assert order == list(range(20))


def test_priority_breaks_ties_before_insertion_order():
    eng = Engine()
    order = []
    eng.schedule(1.0, lambda: order.append("low"), priority=5)
    eng.schedule(1.0, lambda: order.append("high"), priority=0)
    eng.run_until(2.0)
    assert order == ["high", "low"]


def test_schedule_in_past_raises():
    eng = Engine(start=100.0)
    with pytest.raises(SimulationError):
        eng.schedule_at(50.0, lambda: None)


def test_schedule_nan_raises():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule(float("nan"), lambda: None)


def test_horizon_before_now_raises():
    eng = Engine(start=10.0)
    with pytest.raises(SimulationError):
        eng.run_until(5.0)


def test_cancelled_event_does_not_run():
    eng = Engine()
    fired = []
    ev = eng.schedule(1.0, lambda: fired.append(1))
    ev.cancel()
    eng.run_until(2.0)
    assert fired == []
    assert eng.events_executed == 0


def test_events_beyond_horizon_survive_and_run_later():
    eng = Engine()
    fired = []
    eng.schedule(10.0, lambda: fired.append(1))
    eng.run_until(5.0)
    assert fired == []
    eng.run_until(15.0)
    assert fired == [1]


def test_event_can_schedule_followups():
    eng = Engine()
    times = []

    def chain():
        times.append(eng.now)
        if len(times) < 4:
            eng.schedule(2.0, chain)

    eng.schedule(1.0, chain)
    eng.run_until(100.0)
    assert times == [1.0, 3.0, 5.0, 7.0]


def test_periodic_process_receives_dt():
    eng = Engine()
    ticks = []
    eng.add_process("p", period=10.0, fn=lambda now, dt: ticks.append((now, dt)))
    eng.run_until(35.0)
    assert ticks == [(10.0, 10.0), (20.0, 10.0), (30.0, 10.0)]


def test_process_stop_halts_rescheduling():
    eng = Engine()
    ticks = []
    proc = eng.add_process("p", period=1.0, fn=lambda now, dt: ticks.append(now))
    eng.run_until(3.0)
    proc.stop()
    eng.run_until(10.0)
    assert ticks == [1.0, 2.0, 3.0]


def test_process_invalid_period_raises():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.add_process("bad", period=0.0, fn=lambda now, dt: None)


def test_step_executes_single_event():
    eng = Engine()
    fired = []
    eng.schedule(1.0, lambda: fired.append("a"))
    eng.schedule(2.0, lambda: fired.append("b"))
    assert eng.step() is True
    assert fired == ["a"]
    assert eng.now == 1.0
    assert eng.step() is True
    assert eng.step() is False


def test_peek_time_skips_cancelled():
    eng = Engine()
    ev = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    ev.cancel()
    assert eng.peek_time() == 2.0


def test_pending_counts_queue():
    eng = Engine()
    eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    assert eng.pending == 2
    eng.run_until(1.5)
    assert eng.pending == 1
