"""Tests for the resilience subsystem: churn, detection, recovery (§III-C)."""

import pytest

from repro.core.middleware import DF3Middleware, MiddlewareConfig
from repro.core.requests import CloudRequest, EdgeRequest, RequestStatus
from repro.core.resilience import (
    ChurnConfig,
    DetectorConfig,
    HeartbeatFailureDetector,
    RecoveryConfig,
    ResilienceConfig,
    ResilienceLog,
)
from repro.core.scheduling.base import SaturationPolicy
from repro.sim.calendar import DAY, HOUR
from repro.sim.rng import RngRegistry

GHZ = 1e9
T0 = 10 * DAY


def make_mw(recovery=None, churn=None, detector=None, enable_churn=False,
            obs=None, **kw):
    res = ResilienceConfig(
        churn=churn if churn is not None else ChurnConfig(),
        detector=detector if detector is not None else
        DetectorConfig(heartbeat_interval_s=1.0, timeout_s=2.5),
        recovery=recovery if recovery is not None else RecoveryConfig.none(),
        enable_churn=enable_churn,
    )
    defaults = dict(n_districts=2, buildings_per_district=1, rooms_per_building=2,
                    dc_nodes=2, seed=3, start_time=T0, enable_filler=False,
                    resilience=res)
    defaults.update(kw)
    return DF3Middleware(MiddlewareConfig(**defaults), obs=obs)


def edge(t, source="district-0/building-0", deadline=30.0, cycles=0.2 * GHZ):
    return EdgeRequest(cycles=cycles, time=t, deadline_s=deadline,
                       source=source, input_bytes=2e3)


# --------------------------------------------------------------------------- #
# configuration validation
# --------------------------------------------------------------------------- #
def test_config_validation():
    with pytest.raises(ValueError):
        ChurnConfig(failure_dist="bogus")
    with pytest.raises(ValueError):
        ChurnConfig(server_mtbf_s=0.0)
    with pytest.raises(ValueError):
        ChurnConfig(weibull_shape=0.0)
    with pytest.raises(ValueError):
        DetectorConfig(heartbeat_interval_s=1.0, timeout_s=0.5)
    with pytest.raises(ValueError):
        RecoveryConfig(retry_max_attempts=-1)
    with pytest.raises(ValueError):
        RecoveryConfig(checkpoint_interval_s=0.0)


def test_recovery_config_factories():
    none = RecoveryConfig.none()
    assert not (none.retry or none.clone or none.checkpoint
                or none.failover or none.store_and_forward)
    full = RecoveryConfig.all_on(retry_max_attempts=7)
    assert full.retry and full.clone and full.checkpoint
    assert full.failover and full.store_and_forward
    assert full.retry_max_attempts == 7


# --------------------------------------------------------------------------- #
# heartbeat failure detector
# --------------------------------------------------------------------------- #
def test_detector_latency_within_bounds():
    cfg = DetectorConfig(heartbeat_interval_s=1.0, timeout_s=3.0)
    det = HeartbeatFailureDetector(cfg, RngRegistry(1).stream("det"))
    for key in ("a", "b", "c"):
        det.register(key)
    for key in ("a", "b", "c"):
        for t_fail in (0.1, 3.7, 100.3, 777.77, 86400.5):
            t_detect = det.detection_time(key, t_fail)
            assert t_detect >= t_fail
            assert 2.0 < t_detect - t_fail <= 3.0  # (timeout - interval, timeout]


def test_detector_register_and_monitors():
    det = HeartbeatFailureDetector(DetectorConfig(), RngRegistry(1).stream("det"))
    det.register("x")
    assert det.monitors("x") and not det.monitors("y")
    with pytest.raises(ValueError):
        det.register("x")


def test_detector_deterministic_across_builds():
    def build():
        det = HeartbeatFailureDetector(
            DetectorConfig(), RngRegistry(5).stream("resilience-detector"))
        for key in sorted(("s1", "s2", "s3")):
            det.register(key)
        return [det.detection_time(k, 123.456) for k in ("s1", "s2", "s3")]

    assert build() == build()


# --------------------------------------------------------------------------- #
# resilience log
# --------------------------------------------------------------------------- #
def test_detection_latency_percentiles():
    log = ResilienceLog()
    assert log.detection_latency_percentile(99) == 0.0
    log.detection_latencies_s.extend([4.0, 1.0, 3.0, 2.0])
    assert log.detection_latency_percentile(50) == 2.0
    assert log.detection_latency_percentile(99) == 4.0
    assert log.detection_latency_percentile(100) == 4.0


# --------------------------------------------------------------------------- #
# armed machinery must not perturb a churn-free run
# --------------------------------------------------------------------------- #
def test_resilience_without_churn_is_inert():
    def signature(mw):
        reqs = [edge(T0 + 10.0 + 30.0 * i) for i in range(10)]
        mw.inject(reqs)
        mw.run_until(T0 + HOUR)
        return [(r.status.value, r.completed_at, r.executed_on) for r in reqs]

    plain = DF3Middleware(MiddlewareConfig(
        n_districts=2, buildings_per_district=1, rooms_per_building=2,
        dc_nodes=2, seed=3, start_time=T0, enable_filler=False))
    armed = make_mw(recovery=RecoveryConfig.all_on(), enable_churn=False)
    assert signature(plain) == signature(armed)


# --------------------------------------------------------------------------- #
# detection latency gates salvage (no omniscient recovery)
# --------------------------------------------------------------------------- #
def test_salvage_waits_for_detection():
    mw = make_mw(recovery=RecoveryConfig(retry=True))
    rt = mw.resilience
    req = edge(T0, deadline=120.0, cycles=50 * GHZ)
    mw.engine.run_until(T0)
    mw.schedulers[0].submit_edge(req)
    victim = req.executed_on
    mw.run_until(T0 + 5.0)

    rt.on_server_failure(victim)
    # heartbeats stop, but nothing reacts before the timeout window opens
    mw.run_until(T0 + 5.0 + 1.4)  # min latency is timeout - interval = 1.5
    assert req.executed_on == victim
    mw.run_until(T0 + 5.0 + 2.6)  # max latency is timeout = 2.5
    assert req.executed_on != victim  # salvaged through the gateway
    mw.run_until(T0 + 120.0)
    assert req.status is RequestStatus.COMPLETED
    (latency,) = rt.log.detection_latencies_s
    assert 1.5 < latency <= 2.5
    assert rt.log.tasks_salvaged == 1


# --------------------------------------------------------------------------- #
# retry with backoff bridges a short master outage
# --------------------------------------------------------------------------- #
def test_retry_bridges_master_outage():
    mw = make_mw(recovery=RecoveryConfig(retry=True))
    rt = mw.resilience
    rt.injector.fail_master(0)
    mw.engine.schedule_at(T0 + 12.0, lambda: rt.injector.restore_master(0))
    req = edge(T0 + 10.0, deadline=60.0)
    mw.inject([req])
    mw.run_until(T0 + 120.0)
    assert req.status is RequestStatus.COMPLETED
    assert mw.edge_gateways[0].retries >= 1


def test_retry_gives_up_at_the_deadline():
    mw = make_mw(recovery=RecoveryConfig(retry=True))
    mw.resilience.injector.fail_master(0)  # never restored
    req = edge(T0 + 10.0, deadline=20.0)
    mw.inject([req])
    mw.run_until(T0 + 120.0)
    assert req.status is RequestStatus.REJECTED


# --------------------------------------------------------------------------- #
# speculative cloning
# --------------------------------------------------------------------------- #
def terminal_edge_records(mw):
    out = []
    for sched in mw.schedulers.values():
        out.extend(sched.completed_edge)
        out.extend(sched.expired_edge)
    return out


def test_clone_first_completion_wins_single_terminal_record():
    mw = make_mw(recovery=RecoveryConfig(clone=True, clone_deadline_threshold_s=10.0))
    rt = mw.resilience
    req = edge(T0 + 5.0, deadline=8.0, cycles=2 * GHZ)
    mw.inject([req])
    mw.run_until(T0 + 60.0)
    assert rt.log.clones_spawned == 1
    assert req.status is RequestStatus.COMPLETED
    records = terminal_edge_records(mw)
    assert records == [req]  # exactly one record, and it is the primary
    assert not any(r.request_id.endswith("#clone") for r in records)
    # the losing copy was cancelled/discarded and its cores freed again
    for cluster in mw.clusters.values():
        for w in cluster.workers:
            assert w.free_cores == w.n_cores


def test_clone_survives_primary_crash():
    mw = make_mw(recovery=RecoveryConfig(clone=True, clone_deadline_threshold_s=10.0))
    rt = mw.resilience
    req = edge(T0 + 5.0, deadline=8.0, cycles=10 * GHZ)
    mw.inject([req])
    mw.run_until(T0 + 5.5)
    assert req.status is RequestStatus.RUNNING
    victim = req.executed_on
    assert victim.startswith("district-0/")
    rt.on_server_failure(victim)
    mw.run_until(T0 + 60.0)
    # the speculative copy won; its execution record was grafted onto req
    assert req.status is RequestStatus.COMPLETED
    assert req.executed_on.startswith("district-1/")
    assert rt.log.clone_wins == 1
    assert terminal_edge_records(mw) == [req]


def test_loose_deadline_requests_are_not_cloned():
    mw = make_mw(recovery=RecoveryConfig(clone=True, clone_deadline_threshold_s=10.0))
    req = edge(T0 + 5.0, deadline=300.0)
    mw.inject([req])
    mw.run_until(T0 + 60.0)
    assert req.status is RequestStatus.COMPLETED
    assert mw.resilience.log.clones_spawned == 0


# --------------------------------------------------------------------------- #
# periodic checkpointing
# --------------------------------------------------------------------------- #
def test_checkpoint_salvage_restarts_from_snapshot():
    mw = make_mw(recovery=RecoveryConfig(checkpoint=True, checkpoint_interval_s=100.0))
    rt = mw.resilience
    req = CloudRequest(cycles=1e13, time=T0, cores=4)
    mw.engine.run_until(T0)
    mw.schedulers[0].submit_cloud(req)
    mw.run_until(T0 + 350.0)
    assert rt.log.checkpoints_taken >= 2
    victim = req.executed_on
    rt.on_server_failure(victim)
    mw.run_until(T0 + 360.0)  # past detection: salvage happened
    # restarted from the last snapshot, not from scratch
    assert req.cycles < 1e13
    # waste = progress since the last checkpoint only
    executed_at_crash = 350.0 * 4 * 3.5e9
    assert 0.0 < rt.log.wasted_cycles < executed_at_crash
    mw.run_until(T0 + HOUR)
    assert req.status is RequestStatus.COMPLETED


# --------------------------------------------------------------------------- #
# master failover
# --------------------------------------------------------------------------- #
def test_failover_promotes_standby_after_detection():
    mw = make_mw(recovery=RecoveryConfig(failover=True, failover_takeover_s=5.0))
    rt = mw.resilience
    mw.run_until(T0 + 10.0)
    rt.on_master_failure(0)
    gw = mw.edge_gateways[0]
    assert gw.master_up is False
    mw.run_until(T0 + 10.0 + 1.4)  # before detection: still down
    assert gw.master_up is False
    mw.run_until(T0 + 10.0 + 2.5 + 5.0 + 0.1)
    assert gw.master_up is True
    assert rt.log.failovers == 1
    rt.on_master_recovery(0)  # original master returns: a no-op flag flip
    assert gw.master_up is True


# --------------------------------------------------------------------------- #
# store-and-forward WAN offloading
# --------------------------------------------------------------------------- #
def test_store_and_forward_buffers_and_drains():
    mw = make_mw(recovery=RecoveryConfig(store_and_forward=True),
                 saturation_policy=SaturationPolicy.VERTICAL,
                 allow_privacy_vertical=True)
    rt = mw.resilience
    mw.engine.run_until(T0)
    for w in mw.clusters[0].workers:
        for _ in range(w.n_cores):
            mw.schedulers[0].submit_cloud(
                CloudRequest(cycles=1e13, time=T0, cores=1, preemptible=False))
    rt.on_wan_down()
    req = edge(T0 + 10.0, deadline=3600.0)
    mw.inject([req])
    mw.run_until(T0 + 60.0)
    assert mw.offloader.sf_buffered == 1  # held during the partition
    assert req.status is not RequestStatus.COMPLETED
    rt.on_wan_up()
    mw.run_until(T0 + 600.0)
    assert mw.offloader.sf_drained == 1
    assert req.status is RequestStatus.COMPLETED


# --------------------------------------------------------------------------- #
# stochastic churn model
# --------------------------------------------------------------------------- #
def churn_city(seed=11, **churn_kw):
    cfg = dict(server_mtbf_s=1800.0, server_mttr_s=300.0,
               building_cut_rate_per_day=8.0, building_cut_duration_s=300.0,
               master_mtbf_s=1200.0, master_mttr_s=60.0,
               wan_flap_rate_per_day=12.0, wan_flap_duration_s=120.0)
    cfg.update(churn_kw)
    mw = make_mw(recovery=RecoveryConfig.all_on(), churn=ChurnConfig(**cfg),
                 enable_churn=True, seed=seed)
    reqs = [edge(T0 + 20.0 + 60.0 * i, deadline=60.0) for i in range(30)]
    mw.inject(reqs)
    mw.run_until(T0 + 6 * HOUR)
    return mw, reqs


def test_churn_drives_failures_and_repairs():
    mw, reqs = churn_city()
    log = mw.resilience.log
    assert log.server_failures > 0
    assert 0 < log.server_repairs <= log.server_failures
    assert log.master_failures > 0
    assert log.wan_flaps > 0
    for latency in log.detection_latencies_s:
        assert 1.5 < latency <= 2.5
    # churn's view of who is down matches the injector's
    assert set(mw.resilience.churn.down_servers) == mw.resilience.injector.down_servers
    for cluster in mw.clusters.values():
        for w in cluster.workers:
            assert 0 <= w.free_cores <= w.n_cores


def test_churn_is_deterministic():
    def signature():
        mw, reqs = churn_city()
        log = mw.resilience.log
        return (
            log.server_failures, log.server_repairs, log.master_failures,
            log.wan_flaps, log.wasted_cycles, tuple(log.detection_latencies_s),
            tuple((r.status.value, r.completed_at, r.executed_on) for r in reqs),
        )

    assert signature() == signature()


def test_weibull_and_aging_coupled_churn():
    mw, _ = churn_city(failure_dist="weibull", weibull_shape=0.8,
                       aging_coupling=True)
    assert mw.resilience.log.server_failures > 0


# --------------------------------------------------------------------------- #
# policy-engine configuration
# --------------------------------------------------------------------------- #
def test_policy_config_validation():
    with pytest.raises(ValueError):
        RecoveryConfig(clone_cancel_on="finish")
    with pytest.raises(ValueError):
        RecoveryConfig(clone_max_utilisation=1.5)
    with pytest.raises(ValueError):
        RecoveryConfig(adaptive_eval_interval_s=0.0)
    with pytest.raises(ValueError):
        RecoveryConfig(adaptive_util_low=0.9, adaptive_util_high=0.8)
    with pytest.raises(ValueError):
        RecoveryConfig(adaptive_min_dwell_s=-1.0)
    with pytest.raises(ValueError):
        RecoveryConfig(adaptive_window=0)


def test_adaptive_factory():
    rec = RecoveryConfig.adaptive_on(clone_deadline_threshold_s=20.0)
    assert rec.adaptive and rec.retry and rec.checkpoint and rec.clone
    assert rec.clone_cancel_on == "start"
    assert rec.clone_max_utilisation < 1.0 and rec.clone_max_queue_depth >= 0
    assert rec.clone_deadline_threshold_s == 20.0


def test_waste_split_sums_into_wasted_cycles():
    log = ResilienceLog()
    assert log.wasted_cycles == 0.0
    log.clone_waste_cycles = 1.5
    log.failure_waste_cycles = 2.5
    assert log.wasted_cycles == 4.0


# --------------------------------------------------------------------------- #
# cancel-on-start cloning
# --------------------------------------------------------------------------- #
def test_cancel_on_start_zero_clone_waste():
    mw = make_mw(recovery=RecoveryConfig(clone=True,
                                         clone_deadline_threshold_s=10.0,
                                         clone_cancel_on="start"))
    rt = mw.resilience
    req = edge(T0 + 5.0, deadline=8.0, cycles=2 * GHZ)
    mw.inject([req])
    mw.run_until(T0 + 60.0)
    assert req.status is RequestStatus.COMPLETED
    assert rt.log.clones_spawned == 1
    assert rt.log.policy_decisions.get("cancel_sibling") == 1
    # the sibling never burned a cycle: cancelled before it could start
    assert rt.log.clone_waste_cycles == 0.0
    assert terminal_edge_records(mw) == [req]
    for cluster in mw.clusters.values():
        for w in cluster.workers:
            assert w.free_cores == w.n_cores


def test_cancel_on_start_covers_master_outage():
    mw = make_mw(recovery=RecoveryConfig(clone=True,
                                         clone_deadline_threshold_s=10.0,
                                         clone_cancel_on="start"))
    rt = mw.resilience
    rt.injector.fail_master(0)  # home path rejects; the peer copy must win
    req = edge(T0 + 5.0, deadline=8.0, cycles=2 * GHZ)
    mw.inject([req])
    mw.run_until(T0 + 60.0)
    assert req.status is RequestStatus.COMPLETED
    assert req.executed_on.startswith("district-1/")
    assert rt.log.clone_wins == 1
    assert terminal_edge_records(mw) == [req]


def test_cancel_on_start_starter_crash_single_terminal_record():
    # the discipline's known trade-off: once the sibling is cancelled, a
    # crash of the starter loses the request (unless retry is also armed) —
    # but it must lose it exactly once
    mw = make_mw(recovery=RecoveryConfig(clone=True,
                                         clone_deadline_threshold_s=10.0,
                                         clone_cancel_on="start"))
    rt = mw.resilience
    req = edge(T0 + 5.0, deadline=8.0, cycles=10 * GHZ)
    mw.inject([req])
    mw.run_until(T0 + 5.5)
    assert req.status is RequestStatus.RUNNING
    rt.on_server_failure(req.executed_on)
    mw.run_until(T0 + 60.0)
    assert req.status is RequestStatus.REJECTED
    records = terminal_edge_records(mw)
    assert records == [req]
    for cluster in mw.clusters.values():
        for w in cluster.workers:
            assert 0 <= w.free_cores <= w.n_cores


# --------------------------------------------------------------------------- #
# load-thresholded spawning (the PS-model gates)
# --------------------------------------------------------------------------- #
def saturate_district(mw, district):
    """Fill every core of one district with paying (cloud) work."""
    mw.engine.run_until(T0)
    for w in mw.clusters[district].workers:
        for _ in range(w.n_cores):
            mw.schedulers[district].submit_cloud(
                CloudRequest(cycles=1e14, time=T0, cores=1, preemptible=False))


def test_clone_skipped_when_peer_saturated():
    mw = make_mw(recovery=RecoveryConfig(clone=True,
                                         clone_deadline_threshold_s=10.0,
                                         clone_max_utilisation=0.9))
    rt = mw.resilience
    saturate_district(mw, 1)  # the peer has nothing to absorb a copy with
    req = edge(T0 + 5.0, deadline=8.0)
    mw.inject([req])
    mw.run_until(T0 + 60.0)
    assert rt.log.clones_spawned == 0
    assert rt.log.policy_decisions.get("skip_clone") == 1
    assert req.status is RequestStatus.COMPLETED  # single-copy path served it


def test_clone_skipped_when_peer_queue_deep():
    mw = make_mw(recovery=RecoveryConfig(clone=True,
                                         clone_deadline_threshold_s=10.0,
                                         clone_max_queue_depth=0),
                 saturation_policy=SaturationPolicy.QUEUE)
    rt = mw.resilience
    saturate_district(mw, 1)
    backlog = [edge(T0 + 1.0 + 0.01 * i, source="district-1/building-0",
                    deadline=300.0) for i in range(3)]
    mw.inject(backlog)  # deadline 300 > threshold: queue at the peer, no clones
    req = edge(T0 + 5.0, deadline=8.0)
    mw.inject([req])
    mw.run_until(T0 + 6.0)
    assert rt.log.clones_spawned == 0
    assert rt.log.policy_decisions.get("skip_clone") == 1


def test_loaded_home_district_still_clones():
    # the gates look at the clone's target, not the request's home: a loaded
    # home is exactly when racing an idle peer rescues the request
    mw = make_mw(recovery=RecoveryConfig(clone=True,
                                         clone_deadline_threshold_s=10.0,
                                         clone_max_utilisation=0.9,
                                         clone_max_queue_depth=4),
                 saturation_policy=SaturationPolicy.QUEUE)
    rt = mw.resilience
    saturate_district(mw, 0)
    req = edge(T0 + 5.0, deadline=8.0)
    mw.inject([req])
    mw.run_until(T0 + 60.0)
    assert rt.log.clones_spawned == 1
    assert req.status is RequestStatus.COMPLETED
    assert req.executed_on.startswith("district-1/")


def test_paying_load_excludes_filler():
    mw = make_mw(enable_filler=True)
    mw.run_until(T0 + 10 * 60.0)
    rt = mw.resilience
    busy, total = rt.paying_load(0)
    assert total == sum(w.n_cores for w in mw.clusters[0].workers)
    assert busy == 0  # filler keeps cores warm but is not paying load
    assert mw.clusters[0].free_cores() < total  # ...though cores *look* busy


# --------------------------------------------------------------------------- #
# adaptive policy controller
# --------------------------------------------------------------------------- #
def test_controller_only_built_when_adaptive():
    assert make_mw(recovery=RecoveryConfig.all_on()).resilience.policy is None
    mw = make_mw(recovery=RecoveryConfig.adaptive_on())
    ctl = mw.resilience.policy
    assert ctl is not None
    assert ctl.assignment == {"edge_tight": "clone", "edge_loose": "retry",
                              "cloud": "checkpoint"}


def test_controller_hysteresis_band():
    mw = make_mw(recovery=RecoveryConfig.adaptive_on(
        adaptive_window=1, adaptive_min_dwell_s=0.0,
        adaptive_util_high=0.9, adaptive_util_low=0.6))
    ctl = mw.resilience.policy
    ctl.note_tight_deadline(2.0)  # too tight for retry to bridge a crash
    ctl.city_utilisation = lambda: 0.95
    ctl._evaluate(T0, 60.0)
    assert ctl.assignment["edge_tight"] == "retry"  # shed under overload
    ctl.city_utilisation = lambda: 0.75
    ctl._evaluate(T0 + 60.0, 60.0)
    assert ctl.assignment["edge_tight"] == "retry"  # inside the band: hold
    ctl.city_utilisation = lambda: 0.5
    ctl._evaluate(T0 + 120.0, 60.0)
    assert ctl.assignment["edge_tight"] == "clone"  # slack again: rearm
    assert ctl.switches == 2
    assert mw.resilience.log.policy_decisions["switch_edge_tight"] == 2


def test_controller_switch_emits_plain_trace_record():
    # a switch while tracing is active must emit a *root* policy record
    # (no ctx: nothing request-scoped to parent into)
    from repro import obs as O

    obs = O.Observability(tracer=O.Tracer())
    mw = make_mw(recovery=RecoveryConfig.adaptive_on(
        adaptive_window=1, adaptive_min_dwell_s=0.0), obs=obs)
    ctl = mw.resilience.policy
    ctl.note_tight_deadline(2.0)
    ctl.city_utilisation = lambda: 0.99
    ctl._evaluate(T0, 60.0)
    assert ctl.assignment["edge_tight"] == "retry"
    recs = [r for r in obs.tracer.records
            if r.kind == "policy" and r.name == "policy.decision"
            and r.args.get("action") == "switch_edge_tight"]
    assert len(recs) == 1
    assert recs[0].parent_id is None
    assert recs[0].args["reason"] == "overload"


def test_controller_min_dwell_suppresses_flapping():
    mw = make_mw(recovery=RecoveryConfig.adaptive_on(
        adaptive_window=1, adaptive_min_dwell_s=1e9))
    ctl = mw.resilience.policy
    ctl.note_tight_deadline(2.0)
    ctl.city_utilisation = lambda: 0.99
    ctl._evaluate(T0, 60.0)
    assert ctl.assignment["edge_tight"] == "retry"
    ctl.city_utilisation = lambda: 0.1
    ctl._evaluate(T0 + 60.0, 60.0)
    assert ctl.assignment["edge_tight"] == "retry"  # dwell pins the choice
    assert ctl.switches == 1


def test_controller_retry_bridges_rule():
    mw = make_mw(recovery=RecoveryConfig.adaptive_on(
        adaptive_window=1, adaptive_min_dwell_s=0.0))
    ctl = mw.resilience.policy
    # before any failure, the analytic prior stands in: p99 = timeout = 2.5 s
    assert ctl.detection_p99_s() == 2.5
    # loose tight-class deadlines: detect (2.5) + backoff (0.5) fits 60 s,
    # so retry covers crashes and the speculation tax is not worth paying
    ctl.note_tight_deadline(60.0)
    assert ctl.retry_can_bridge()
    ctl.city_utilisation = lambda: 0.1
    ctl._evaluate(T0, 60.0)
    assert ctl.assignment["edge_tight"] == "retry"
    # a genuinely tight deadline flips the feasibility check back
    ctl.note_tight_deadline(2.0)
    assert not ctl.retry_can_bridge()
    ctl._evaluate(T0 + 60.0, 60.0)
    assert ctl.assignment["edge_tight"] == "clone"


def test_adaptive_churn_run_is_deterministic():
    def signature():
        cfg = dict(server_mtbf_s=1800.0, server_mttr_s=300.0,
                   master_mtbf_s=1200.0, master_mttr_s=60.0,
                   wan_flap_rate_per_day=12.0, wan_flap_duration_s=120.0)
        mw = make_mw(recovery=RecoveryConfig.adaptive_on(
                         adaptive_eval_interval_s=60.0),
                     churn=ChurnConfig(**cfg), enable_churn=True, seed=11)
        reqs = [edge(T0 + 20.0 + 60.0 * i, deadline=60.0) for i in range(30)]
        mw.inject(reqs)
        mw.run_until(T0 + 6 * HOUR)
        log = mw.resilience.log
        return (
            log.server_failures, log.clones_spawned, log.clone_wins,
            log.clone_waste_cycles, log.failure_waste_cycles,
            tuple(sorted(log.policy_decisions.items())),
            mw.resilience.policy.switches,
            tuple((r.status.value, r.completed_at, r.executed_on) for r in reqs),
        )

    assert signature() == signature()


# --------------------------------------------------------------------------- #
# decision provenance: spans in request trees, counters in the twin
# --------------------------------------------------------------------------- #
def test_policy_decision_spans_linked_into_request_tree():
    from repro import obs as O

    obs = O.Observability(tracer=O.Tracer())
    mw = make_mw(recovery=RecoveryConfig(clone=True,
                                         clone_deadline_threshold_s=10.0,
                                         clone_cancel_on="start"),
                 obs=obs)
    req = edge(T0 + 5.0, deadline=8.0, cycles=2 * GHZ)
    mw.inject([req])
    mw.run_until(T0 + 60.0)
    decisions = [r for r in obs.tracer.records if r.kind == "policy"]
    assert {r.args["action"] for r in decisions} == {"spawn_clone",
                                                     "cancel_sibling"}
    # the decision spans live in the request's causal tree, parented into
    # the chain — not floating point events
    (tid,) = {r.trace_id for r in decisions}
    assert tid is not None
    assert all(r.parent_id is not None for r in decisions)
    names = {r.name for r in obs.tracer.records if r.trace_id == tid}
    assert "policy.decision" in names and "edge.completed" in names


def test_status_dict_surfaces_policy_counters():
    mw = make_mw(recovery=RecoveryConfig.adaptive_on())
    # deadline 2 s: detect (2.5) + backoff (0.5) cannot bridge, so the
    # controller keeps cloning armed for the tight class
    req = edge(T0 + 5.0, deadline=2.0)
    mw.inject([req])
    mw.run_until(T0 + 60.0)
    status = mw.resilience.status_dict()
    assert status["clones_spawned"] == 1
    assert status["policy_decisions"]["spawn_clone"] == 1
    assert status["controller"]["assignment"]["edge_tight"] == "clone"
    assert status["controller"]["evals"] >= 1
    import json
    json.dumps(status)  # must be JSON-serialisable for /api/state + SSE


# --------------------------------------------------------------------------- #
# pre-engine byte-identity pin: RecoveryConfig.none() under churn
# --------------------------------------------------------------------------- #
def test_recovery_none_matches_pre_policy_engine_seed_path():
    """Pin that the policy engine changed nothing for unarmed configs.

    The signature hash below was captured on the commit *before* the policy
    engine (cancel-on-start, load gates, adaptive controller) landed.  If
    this test fails, the refactor perturbed the legacy no-recovery event
    stream — a determinism regression, not a golden refresh.
    """
    import hashlib

    res = ResilienceConfig(
        churn=ChurnConfig(server_mtbf_s=1800.0, server_mttr_s=300.0,
                          building_cut_rate_per_day=8.0,
                          building_cut_duration_s=300.0,
                          master_mtbf_s=1200.0, master_mttr_s=60.0,
                          wan_flap_rate_per_day=12.0, wan_flap_duration_s=120.0),
        detector=DetectorConfig(heartbeat_interval_s=1.0, timeout_s=2.5),
        recovery=RecoveryConfig.none(),
        enable_churn=True,
    )
    mw = DF3Middleware(MiddlewareConfig(
        n_districts=2, buildings_per_district=1, rooms_per_building=2,
        dc_nodes=2, seed=11, start_time=T0, enable_filler=False,
        resilience=res))
    reqs = [EdgeRequest(cycles=0.2 * GHZ, time=T0 + 20.0 + 60.0 * i,
                        deadline_s=60.0, source="district-0/building-0",
                        input_bytes=2e3)
            for i in range(30)]
    cloud = [CloudRequest(cycles=2e12, time=T0 + 120.0 + 500.0 * i, cores=2)
             for i in range(4)]
    mw.inject(reqs)
    mw.inject(cloud)
    mw.run_until(T0 + 6 * HOUR)
    log = mw.resilience.log
    sig = (
        log.server_failures, log.server_repairs, log.master_failures,
        log.wan_flaps, round(log.wasted_cycles, 6),
        tuple(round(x, 9) for x in log.detection_latencies_s),
        tuple((r.status.value, round(r.completed_at, 9), r.executed_on)
              for r in reqs + cloud),
        mw.engine.events_executed,
    )
    digest = hashlib.sha256(repr(sig).encode()).hexdigest()
    assert digest == ("39590e19dbeb5f5733b06ad2e571617f"
                      "001e6ba7be17246ee265db4573fe5d31")
