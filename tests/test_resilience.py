"""Tests for the resilience subsystem: churn, detection, recovery (§III-C)."""

import pytest

from repro.core.middleware import DF3Middleware, MiddlewareConfig
from repro.core.requests import CloudRequest, EdgeRequest, RequestStatus
from repro.core.resilience import (
    ChurnConfig,
    DetectorConfig,
    HeartbeatFailureDetector,
    RecoveryConfig,
    ResilienceConfig,
    ResilienceLog,
)
from repro.core.scheduling.base import SaturationPolicy
from repro.sim.calendar import DAY, HOUR
from repro.sim.rng import RngRegistry

GHZ = 1e9
T0 = 10 * DAY


def make_mw(recovery=None, churn=None, detector=None, enable_churn=False, **kw):
    res = ResilienceConfig(
        churn=churn if churn is not None else ChurnConfig(),
        detector=detector if detector is not None else
        DetectorConfig(heartbeat_interval_s=1.0, timeout_s=2.5),
        recovery=recovery if recovery is not None else RecoveryConfig.none(),
        enable_churn=enable_churn,
    )
    defaults = dict(n_districts=2, buildings_per_district=1, rooms_per_building=2,
                    dc_nodes=2, seed=3, start_time=T0, enable_filler=False,
                    resilience=res)
    defaults.update(kw)
    return DF3Middleware(MiddlewareConfig(**defaults))


def edge(t, source="district-0/building-0", deadline=30.0, cycles=0.2 * GHZ):
    return EdgeRequest(cycles=cycles, time=t, deadline_s=deadline,
                       source=source, input_bytes=2e3)


# --------------------------------------------------------------------------- #
# configuration validation
# --------------------------------------------------------------------------- #
def test_config_validation():
    with pytest.raises(ValueError):
        ChurnConfig(failure_dist="bogus")
    with pytest.raises(ValueError):
        ChurnConfig(server_mtbf_s=0.0)
    with pytest.raises(ValueError):
        ChurnConfig(weibull_shape=0.0)
    with pytest.raises(ValueError):
        DetectorConfig(heartbeat_interval_s=1.0, timeout_s=0.5)
    with pytest.raises(ValueError):
        RecoveryConfig(retry_max_attempts=-1)
    with pytest.raises(ValueError):
        RecoveryConfig(checkpoint_interval_s=0.0)


def test_recovery_config_factories():
    none = RecoveryConfig.none()
    assert not (none.retry or none.clone or none.checkpoint
                or none.failover or none.store_and_forward)
    full = RecoveryConfig.all_on(retry_max_attempts=7)
    assert full.retry and full.clone and full.checkpoint
    assert full.failover and full.store_and_forward
    assert full.retry_max_attempts == 7


# --------------------------------------------------------------------------- #
# heartbeat failure detector
# --------------------------------------------------------------------------- #
def test_detector_latency_within_bounds():
    cfg = DetectorConfig(heartbeat_interval_s=1.0, timeout_s=3.0)
    det = HeartbeatFailureDetector(cfg, RngRegistry(1).stream("det"))
    for key in ("a", "b", "c"):
        det.register(key)
    for key in ("a", "b", "c"):
        for t_fail in (0.1, 3.7, 100.3, 777.77, 86400.5):
            t_detect = det.detection_time(key, t_fail)
            assert t_detect >= t_fail
            assert 2.0 < t_detect - t_fail <= 3.0  # (timeout - interval, timeout]


def test_detector_register_and_monitors():
    det = HeartbeatFailureDetector(DetectorConfig(), RngRegistry(1).stream("det"))
    det.register("x")
    assert det.monitors("x") and not det.monitors("y")
    with pytest.raises(ValueError):
        det.register("x")


def test_detector_deterministic_across_builds():
    def build():
        det = HeartbeatFailureDetector(
            DetectorConfig(), RngRegistry(5).stream("resilience-detector"))
        for key in sorted(("s1", "s2", "s3")):
            det.register(key)
        return [det.detection_time(k, 123.456) for k in ("s1", "s2", "s3")]

    assert build() == build()


# --------------------------------------------------------------------------- #
# resilience log
# --------------------------------------------------------------------------- #
def test_detection_latency_percentiles():
    log = ResilienceLog()
    assert log.detection_latency_percentile(99) == 0.0
    log.detection_latencies_s.extend([4.0, 1.0, 3.0, 2.0])
    assert log.detection_latency_percentile(50) == 2.0
    assert log.detection_latency_percentile(99) == 4.0
    assert log.detection_latency_percentile(100) == 4.0


# --------------------------------------------------------------------------- #
# armed machinery must not perturb a churn-free run
# --------------------------------------------------------------------------- #
def test_resilience_without_churn_is_inert():
    def signature(mw):
        reqs = [edge(T0 + 10.0 + 30.0 * i) for i in range(10)]
        mw.inject(reqs)
        mw.run_until(T0 + HOUR)
        return [(r.status.value, r.completed_at, r.executed_on) for r in reqs]

    plain = DF3Middleware(MiddlewareConfig(
        n_districts=2, buildings_per_district=1, rooms_per_building=2,
        dc_nodes=2, seed=3, start_time=T0, enable_filler=False))
    armed = make_mw(recovery=RecoveryConfig.all_on(), enable_churn=False)
    assert signature(plain) == signature(armed)


# --------------------------------------------------------------------------- #
# detection latency gates salvage (no omniscient recovery)
# --------------------------------------------------------------------------- #
def test_salvage_waits_for_detection():
    mw = make_mw(recovery=RecoveryConfig(retry=True))
    rt = mw.resilience
    req = edge(T0, deadline=120.0, cycles=50 * GHZ)
    mw.engine.run_until(T0)
    mw.schedulers[0].submit_edge(req)
    victim = req.executed_on
    mw.run_until(T0 + 5.0)

    rt.on_server_failure(victim)
    # heartbeats stop, but nothing reacts before the timeout window opens
    mw.run_until(T0 + 5.0 + 1.4)  # min latency is timeout - interval = 1.5
    assert req.executed_on == victim
    mw.run_until(T0 + 5.0 + 2.6)  # max latency is timeout = 2.5
    assert req.executed_on != victim  # salvaged through the gateway
    mw.run_until(T0 + 120.0)
    assert req.status is RequestStatus.COMPLETED
    (latency,) = rt.log.detection_latencies_s
    assert 1.5 < latency <= 2.5
    assert rt.log.tasks_salvaged == 1


# --------------------------------------------------------------------------- #
# retry with backoff bridges a short master outage
# --------------------------------------------------------------------------- #
def test_retry_bridges_master_outage():
    mw = make_mw(recovery=RecoveryConfig(retry=True))
    rt = mw.resilience
    rt.injector.fail_master(0)
    mw.engine.schedule_at(T0 + 12.0, lambda: rt.injector.restore_master(0))
    req = edge(T0 + 10.0, deadline=60.0)
    mw.inject([req])
    mw.run_until(T0 + 120.0)
    assert req.status is RequestStatus.COMPLETED
    assert mw.edge_gateways[0].retries >= 1


def test_retry_gives_up_at_the_deadline():
    mw = make_mw(recovery=RecoveryConfig(retry=True))
    mw.resilience.injector.fail_master(0)  # never restored
    req = edge(T0 + 10.0, deadline=20.0)
    mw.inject([req])
    mw.run_until(T0 + 120.0)
    assert req.status is RequestStatus.REJECTED


# --------------------------------------------------------------------------- #
# speculative cloning
# --------------------------------------------------------------------------- #
def terminal_edge_records(mw):
    out = []
    for sched in mw.schedulers.values():
        out.extend(sched.completed_edge)
        out.extend(sched.expired_edge)
    return out


def test_clone_first_completion_wins_single_terminal_record():
    mw = make_mw(recovery=RecoveryConfig(clone=True, clone_deadline_threshold_s=10.0))
    rt = mw.resilience
    req = edge(T0 + 5.0, deadline=8.0, cycles=2 * GHZ)
    mw.inject([req])
    mw.run_until(T0 + 60.0)
    assert rt.log.clones_spawned == 1
    assert req.status is RequestStatus.COMPLETED
    records = terminal_edge_records(mw)
    assert records == [req]  # exactly one record, and it is the primary
    assert not any(r.request_id.endswith("#clone") for r in records)
    # the losing copy was cancelled/discarded and its cores freed again
    for cluster in mw.clusters.values():
        for w in cluster.workers:
            assert w.free_cores == w.n_cores


def test_clone_survives_primary_crash():
    mw = make_mw(recovery=RecoveryConfig(clone=True, clone_deadline_threshold_s=10.0))
    rt = mw.resilience
    req = edge(T0 + 5.0, deadline=8.0, cycles=10 * GHZ)
    mw.inject([req])
    mw.run_until(T0 + 5.5)
    assert req.status is RequestStatus.RUNNING
    victim = req.executed_on
    assert victim.startswith("district-0/")
    rt.on_server_failure(victim)
    mw.run_until(T0 + 60.0)
    # the speculative copy won; its execution record was grafted onto req
    assert req.status is RequestStatus.COMPLETED
    assert req.executed_on.startswith("district-1/")
    assert rt.log.clone_wins == 1
    assert terminal_edge_records(mw) == [req]


def test_loose_deadline_requests_are_not_cloned():
    mw = make_mw(recovery=RecoveryConfig(clone=True, clone_deadline_threshold_s=10.0))
    req = edge(T0 + 5.0, deadline=300.0)
    mw.inject([req])
    mw.run_until(T0 + 60.0)
    assert req.status is RequestStatus.COMPLETED
    assert mw.resilience.log.clones_spawned == 0


# --------------------------------------------------------------------------- #
# periodic checkpointing
# --------------------------------------------------------------------------- #
def test_checkpoint_salvage_restarts_from_snapshot():
    mw = make_mw(recovery=RecoveryConfig(checkpoint=True, checkpoint_interval_s=100.0))
    rt = mw.resilience
    req = CloudRequest(cycles=1e13, time=T0, cores=4)
    mw.engine.run_until(T0)
    mw.schedulers[0].submit_cloud(req)
    mw.run_until(T0 + 350.0)
    assert rt.log.checkpoints_taken >= 2
    victim = req.executed_on
    rt.on_server_failure(victim)
    mw.run_until(T0 + 360.0)  # past detection: salvage happened
    # restarted from the last snapshot, not from scratch
    assert req.cycles < 1e13
    # waste = progress since the last checkpoint only
    executed_at_crash = 350.0 * 4 * 3.5e9
    assert 0.0 < rt.log.wasted_cycles < executed_at_crash
    mw.run_until(T0 + HOUR)
    assert req.status is RequestStatus.COMPLETED


# --------------------------------------------------------------------------- #
# master failover
# --------------------------------------------------------------------------- #
def test_failover_promotes_standby_after_detection():
    mw = make_mw(recovery=RecoveryConfig(failover=True, failover_takeover_s=5.0))
    rt = mw.resilience
    mw.run_until(T0 + 10.0)
    rt.on_master_failure(0)
    gw = mw.edge_gateways[0]
    assert gw.master_up is False
    mw.run_until(T0 + 10.0 + 1.4)  # before detection: still down
    assert gw.master_up is False
    mw.run_until(T0 + 10.0 + 2.5 + 5.0 + 0.1)
    assert gw.master_up is True
    assert rt.log.failovers == 1
    rt.on_master_recovery(0)  # original master returns: a no-op flag flip
    assert gw.master_up is True


# --------------------------------------------------------------------------- #
# store-and-forward WAN offloading
# --------------------------------------------------------------------------- #
def test_store_and_forward_buffers_and_drains():
    mw = make_mw(recovery=RecoveryConfig(store_and_forward=True),
                 saturation_policy=SaturationPolicy.VERTICAL,
                 allow_privacy_vertical=True)
    rt = mw.resilience
    mw.engine.run_until(T0)
    for w in mw.clusters[0].workers:
        for _ in range(w.n_cores):
            mw.schedulers[0].submit_cloud(
                CloudRequest(cycles=1e13, time=T0, cores=1, preemptible=False))
    rt.on_wan_down()
    req = edge(T0 + 10.0, deadline=3600.0)
    mw.inject([req])
    mw.run_until(T0 + 60.0)
    assert mw.offloader.sf_buffered == 1  # held during the partition
    assert req.status is not RequestStatus.COMPLETED
    rt.on_wan_up()
    mw.run_until(T0 + 600.0)
    assert mw.offloader.sf_drained == 1
    assert req.status is RequestStatus.COMPLETED


# --------------------------------------------------------------------------- #
# stochastic churn model
# --------------------------------------------------------------------------- #
def churn_city(seed=11, **churn_kw):
    cfg = dict(server_mtbf_s=1800.0, server_mttr_s=300.0,
               building_cut_rate_per_day=8.0, building_cut_duration_s=300.0,
               master_mtbf_s=1200.0, master_mttr_s=60.0,
               wan_flap_rate_per_day=12.0, wan_flap_duration_s=120.0)
    cfg.update(churn_kw)
    mw = make_mw(recovery=RecoveryConfig.all_on(), churn=ChurnConfig(**cfg),
                 enable_churn=True, seed=seed)
    reqs = [edge(T0 + 20.0 + 60.0 * i, deadline=60.0) for i in range(30)]
    mw.inject(reqs)
    mw.run_until(T0 + 6 * HOUR)
    return mw, reqs


def test_churn_drives_failures_and_repairs():
    mw, reqs = churn_city()
    log = mw.resilience.log
    assert log.server_failures > 0
    assert 0 < log.server_repairs <= log.server_failures
    assert log.master_failures > 0
    assert log.wan_flaps > 0
    for latency in log.detection_latencies_s:
        assert 1.5 < latency <= 2.5
    # churn's view of who is down matches the injector's
    assert set(mw.resilience.churn.down_servers) == mw.resilience.injector.down_servers
    for cluster in mw.clusters.values():
        for w in cluster.workers:
            assert 0 <= w.free_cores <= w.n_cores


def test_churn_is_deterministic():
    def signature():
        mw, reqs = churn_city()
        log = mw.resilience.log
        return (
            log.server_failures, log.server_repairs, log.master_failures,
            log.wan_flaps, log.wasted_cycles, tuple(log.detection_latencies_s),
            tuple((r.status.value, r.completed_at, r.executed_on) for r in reqs),
        )

    assert signature() == signature()


def test_weibull_and_aging_coupled_churn():
    mw, _ = churn_city(failure_dist="weibull", weibull_shape=0.8,
                       aging_coupling=True)
    assert mw.resilience.log.server_failures > 0
