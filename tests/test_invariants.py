"""Cross-cutting property tests: system-level invariants under random load.

These use hypothesis to generate random request mixes and assert conservation
laws that must hold for *any* workload:

* no request is lost — every submitted request reaches a terminal or queued
  state, exactly once;
* work conservation — cycles executed by the fleet ≥ cycles of completed
  requests (filler and context switches may add more, never less);
* energy is non-negative and monotone;
* the RC thermal model conserves energy (heat in = storage + losses).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.requests import CloudRequest, EdgeRequest, RequestStatus
from repro.core.scheduling.base import SaturationPolicy
from repro.core.scheduling.shared import SharedWorkersScheduler
from repro.hardware.cpu import DVFSLadder, PState
from repro.hardware.server import ComputeServer, ServerSpec
from repro.sim.engine import Engine
from repro.thermal.rc_model import AIR_RHO_CP, RCNetwork, RoomThermalParams

GHZ = 1e9


def build_sched(engine, n_workers=2, cores=4, policy=SaturationPolicy.PREEMPT):
    spec = ServerSpec("t", cores, DVFSLadder([PState(1.0, 1.0)]), 10.0, 100.0)
    c = Cluster(ClusterConfig(name="c0"))
    for i in range(n_workers):
        c.add_worker(ComputeServer(f"w{i}", spec, engine))
    return SharedWorkersScheduler(c, engine, policy=policy)


request_mix = st.lists(
    st.tuples(
        st.sampled_from(["edge", "cloud"]),
        st.floats(min_value=0.1, max_value=20.0),   # Gcycles
        st.integers(min_value=1, max_value=4),      # cores
        st.floats(min_value=0.0, max_value=100.0),  # arrival offset
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=40, deadline=None)
@given(mix=request_mix)
def test_property_no_request_lost(mix):
    """Every submitted request ends COMPLETED or REJECTED given enough time."""
    engine = Engine()
    sched = build_sched(engine)
    requests = []
    for kind, gcycles, cores, offset in mix:
        if kind == "edge":
            req = EdgeRequest(cycles=gcycles * GHZ, time=offset, deadline_s=1e6,
                              cores=cores, source="d")
            engine.schedule_at(offset, lambda r=req: sched.submit_edge(r))
        else:
            req = CloudRequest(cycles=gcycles * GHZ, time=offset, cores=cores)
            engine.schedule_at(offset, lambda r=req: sched.submit_cloud(r))
        requests.append(req)
    engine.run_until(1e6)
    statuses = {r.request_id: r.status for r in requests}
    assert all(
        s in (RequestStatus.COMPLETED, RequestStatus.REJECTED) for s in statuses.values()
    ), statuses
    # accounting consistency: completed lists match statuses, no duplicates
    done_ids = [r.request_id for r in sched.completed_edge + sched.completed_cloud]
    assert len(done_ids) == len(set(done_ids))
    completed = [r for r in requests if r.status is RequestStatus.COMPLETED]
    assert set(done_ids) == {r.request_id for r in completed}


@settings(max_examples=30, deadline=None)
@given(mix=request_mix)
def test_property_work_and_energy_conservation(mix):
    """Executed cycles ≥ completed demand; energy non-negative and consistent."""
    engine = Engine()
    sched = build_sched(engine)
    requests = []
    for kind, gcycles, cores, offset in mix:
        if kind == "edge":
            req = EdgeRequest(cycles=gcycles * GHZ, time=offset, deadline_s=1e6,
                              cores=cores, source="d")
            engine.schedule_at(offset, lambda r=req: sched.submit_edge(r))
        else:
            req = CloudRequest(cycles=gcycles * GHZ, time=offset, cores=cores)
            engine.schedule_at(offset, lambda r=req: sched.submit_cloud(r))
        requests.append(req)
    engine.run_until(1e6)
    for w in sched.cluster.workers:
        w.sync()
    executed = sum(w.cycles_executed for w in sched.cluster.workers)
    demanded = sum(
        r.cycles for r in requests if r.status is RequestStatus.COMPLETED
    )
    # preemption re-queues remaining work, so total executed can only exceed
    # the final-demand sum by float tolerance, never undershoot it
    assert executed >= demanded * (1 - 1e-9) - 10.0
    assert all(w.energy_j >= 0 for w in sched.cluster.workers)
    # energy at least idle power × elapsed time for enabled servers
    for w in sched.cluster.workers:
        assert w.energy_j >= 10.0 * 1e6 * (1 - 1e-9)


@settings(max_examples=30, deadline=None)
@given(
    p_heat=st.floats(min_value=0.0, max_value=2000.0),
    t_out=st.floats(min_value=-10.0, max_value=35.0),
    hours=st.integers(min_value=1, max_value=48),
)
def test_property_rc_energy_balance(p_heat, t_out, hours):
    """2R2C conservation: input energy = stored energy + envelope losses."""
    params = RoomThermalParams()
    net = RCNetwork([params], t_init_c=18.0)
    dt = 60.0
    n = int(hours * 3600 / dt)
    e_in = 0.0
    e_loss = 0.0
    for _ in range(n):
        ta, te = float(net.t_air[0]), float(net.t_env[0])
        # losses over this step at the pre-step state (explicit Euler exact)
        q_inf = (ta - t_out) / params.r_inf
        q_ea = (te - t_out) / params.r_ea
        e_in += p_heat * dt
        e_loss += (q_inf + q_ea) * dt
        net.step(dt, t_out=t_out, p_heat=p_heat)
    stored = (
        params.c_air * (float(net.t_air[0]) - 18.0)
        + params.c_env * (float(net.t_env[0]) - 18.0)
    )
    scale = max(abs(e_in), abs(e_loss), abs(stored), 1e6)
    assert abs(e_in - e_loss - stored) / scale < 0.02


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_property_engine_determinism(seed):
    """Identical seeds → identical event traces, regardless of the seed."""
    from repro.sim.rng import RngRegistry

    def trace(s):
        rng = RngRegistry(s).stream("t")
        engine = Engine()
        out = []
        for _ in range(20):
            engine.schedule(float(rng.exponential(5.0)), lambda: out.append(engine.now))
        engine.run_until(1000.0)
        return out

    assert trace(seed) == trace(seed)
