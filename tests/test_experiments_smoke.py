"""Fast smoke tests of the experiment layer (scaled-down parameters).

The full experiments run under ``benchmarks/``; these verify the experiment
modules produce well-formed results quickly enough for the unit suite.
"""

import pytest

from repro.experiments.a1_cluster_formation import run as a1
from repro.experiments.a3_crypto_heater import run as a3
from repro.experiments.common import ExperimentResult, mid_month_start, small_city
from repro.experiments.e1_pue import run as e1
from repro.experiments.e6_heat_regulator import run as e6
from repro.experiments.e8_thermosensitivity import run as e8
from repro.experiments.e10_app_classes import run as e10
from repro.experiments.e12_aging import run as e12
from repro.experiments.fig4_temperature import run as f4
from repro.sim.calendar import DAY, SimCalendar


def check(result, eid):
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == eid
    assert result.text
    assert result.data
    assert eid in str(result)


def test_common_mid_month_start():
    cal = SimCalendar()
    t = mid_month_start(3)
    assert cal.month(t) == 3
    assert cal.day_of_month(t) == 10


def test_common_small_city_overrides():
    mw = small_city(n_districts=1, rooms_per_building=1)
    assert len(mw.clusters) == 1
    assert mw.config.rooms_per_building == 1


def test_f4_smoke():
    check(f4(days_per_month=0.25, seed=1, rooms_per_building=1), "F4")


def test_e1_smoke():
    r = e1(duration_days=0.1, seed=1)
    check(r, "E1")
    assert r.data["df_pue"] < r.data["dc_pue"]


def test_e6_smoke():
    r = e6()
    check(r, "E6")
    assert set(r.data["controllers"]) == {
        "regulated (PI+DVFS)", "bang-bang (no DVFS)", "uncontrolled (load-driven)"
    }


def test_e8_smoke():
    r = e8(seed=1, n_rooms=4)
    check(r, "E8")
    assert 0 < r.data["train_r2"] <= 1


def test_e10_smoke():
    r = e10(seed=1)
    check(r, "E10")
    assert r.data["neighbourhood"]["df"] < r.data["neighbourhood"]["dc"]


def test_e12_smoke():
    r = e12(seed=1)
    check(r, "E12")


def test_a1_smoke():
    r = a1(seed=1)
    check(r, "A1")


def test_a3_smoke():
    r = a3(days=0.5, seed=1)
    check(r, "A3")


def test_f4_validation():
    with pytest.raises(ValueError):
        f4(days_per_month=0.0)
