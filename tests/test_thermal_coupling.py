"""Tests for inter-room (party-wall) thermal coupling."""

import numpy as np
import pytest

from repro.sim.calendar import HOUR
from repro.sim.rng import RngRegistry
from repro.thermal.building import Building, RoomConfig
from repro.thermal.rc_model import RCNetwork, RoomThermalParams
from repro.thermal.weather import Weather


def two_rooms(g=None):
    net = RCNetwork([RoomThermalParams(), RoomThermalParams()], t_init_c=18.0)
    if g is not None:
        net.couple(0, 1, g)
    return net


def test_couple_validation():
    net = two_rooms()
    with pytest.raises(ValueError):
        net.couple(0, 0, 10.0)
    with pytest.raises(ValueError):
        net.couple(0, 5, 10.0)
    with pytest.raises(ValueError):
        net.couple(0, 1, 0.0)
    assert not net.coupled


def test_heat_flows_to_unheated_neighbour():
    coupled = two_rooms(g=25.0)
    isolated = two_rooms()
    for _ in range(48):
        coupled.step(HOUR, t_out=5.0, p_heat=np.array([600.0, 0.0]))
        isolated.step(HOUR, t_out=5.0, p_heat=np.array([600.0, 0.0]))
    # the coupled neighbour is warmer than the isolated one...
    assert coupled.t_air[1] > isolated.t_air[1] + 0.5
    # ...at the heated room's expense
    assert coupled.t_air[0] < isolated.t_air[0]


def test_coupling_conserves_energy_pairwise():
    """Party-wall exchange is internal: total enthalpy matches uncoupled sum

    when both rooms are identical and symmetric inputs are applied."""
    net = two_rooms(g=25.0)
    p = np.array([400.0, 400.0])
    for _ in range(24):
        net.step(HOUR, t_out=5.0, p_heat=p)
    # symmetric case: coupling must not change anything at all
    ref = two_rooms()
    for _ in range(24):
        ref.step(HOUR, t_out=5.0, p_heat=p)
    np.testing.assert_allclose(net.t_air, ref.t_air, rtol=1e-10)


def test_coupled_rooms_converge_to_each_other():
    net = two_rooms(g=50.0)
    net.t_air = np.array([25.0, 15.0])
    for _ in range(200):
        net.step(HOUR, t_out=20.0)
    assert abs(net.t_air[0] - net.t_air[1]) < 0.2


def test_steady_state_raises_when_coupled():
    net = two_rooms(g=10.0)
    with pytest.raises(NotImplementedError):
        net.steady_state(5.0, p_heat=500.0)


def test_substepping_remains_stable_with_strong_coupling():
    net = two_rooms(g=500.0)  # strong coupling shrinks dt_max
    net.step(24 * HOUR, t_out=0.0, p_heat=np.array([1000.0, 0.0]))
    assert np.all(np.isfinite(net.t_air))
    assert np.all(net.t_air > -5.0) and np.all(net.t_air < 60.0)


def test_building_party_wall_option():
    weather = Weather(RngRegistry(0).stream("weather"))
    cfgs = [RoomConfig(name=f"r{i}") for i in range(3)]
    b = Building(cfgs, weather, party_wall_g_w_per_k=20.0)
    assert b.network.coupled
    b.rooms[0].aux_heat_w = 800.0
    t = 10 * 86400.0
    for i in range(100):
        b.step(t + i * 300.0, 300.0)
    # the middle room benefits from its heated neighbour
    b_iso = Building([RoomConfig(name=f"r{i}") for i in range(3)], weather)
    b_iso.rooms[0].aux_heat_w = 800.0
    for i in range(100):
        b_iso.step(t + i * 300.0, 300.0)
    assert b.temperatures[1] > b_iso.temperatures[1]
