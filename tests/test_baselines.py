"""Tests for the three baseline architectures."""

import pytest

from repro.baselines.cloud_only import CloudOnlyBaseline
from repro.baselines.desktop_grid import DesktopGridBaseline
from repro.baselines.micro_dc import MicroDatacenterBaseline
from repro.core.requests import CloudRequest, EdgeRequest, RequestStatus
from repro.sim.calendar import DAY, HOUR

GHZ = 1e9
WINTER = 10 * DAY


def edge(t, cycles=0.5 * GHZ, deadline=1.0, source="district-0/building-0"):
    return EdgeRequest(cycles=cycles, time=t, deadline_s=deadline, source=source,
                       input_bytes=2e3, output_bytes=500)


def cloud(t, cycles=10 * GHZ, cores=2):
    return CloudRequest(cycles=cycles, time=t, cores=cores, input_bytes=1e6)


# --------------------------------------------------------------------------- #
# cloud-only
# --------------------------------------------------------------------------- #
def test_cloud_only_executes_remotely():
    b = CloudOnlyBaseline(n_rooms=2, dc_nodes=1, start_time=WINTER)
    e, c = edge(WINTER + 10.0), cloud(WINTER + 10.0)
    b.inject([e, c])
    b.run_until(WINTER + HOUR)
    assert e.status is RequestStatus.COMPLETED
    assert c.status is RequestStatus.COMPLETED
    assert e.executed_on == "dc"
    assert e.network_delay_s > 0.05  # continental WAN both ways


def test_cloud_only_edge_latency_floor_is_wan_rtt():
    b = CloudOnlyBaseline(n_rooms=2, dc_nodes=1, start_time=WINTER)
    e = edge(WINTER + 10.0, deadline=0.05)  # tighter than the WAN RTT
    b.inject([e])
    b.run_until(WINTER + HOUR)
    assert not e.deadline_met()
    assert b.edge_deadline_miss_rate() == 1.0


def test_cloud_only_resistive_heating_burns_energy():
    b = CloudOnlyBaseline(n_rooms=4, dc_nodes=1, start_time=WINTER)
    b.run_until(WINTER + DAY)
    assert b.heater_energy_j > 0
    assert b.total_energy_j() >= b.heater_energy_j
    stats = b.comfort.result()
    assert stats.mean_temp_c > 18.0  # resistive heat does keep homes warm


def test_cloud_only_validation():
    with pytest.raises(ValueError):
        CloudOnlyBaseline(n_rooms=0)
    b = CloudOnlyBaseline(n_rooms=1, dc_nodes=1)
    with pytest.raises(TypeError):
        b.inject([object()])


# --------------------------------------------------------------------------- #
# micro-DC
# --------------------------------------------------------------------------- #
def test_micro_dc_local_edge_latency():
    b = MicroDatacenterBaseline(n_districts=2, start_time=WINTER)
    e = edge(WINTER + 10.0)
    b.inject([e])
    b.run_until(WINTER + HOUR)
    assert e.status is RequestStatus.COMPLETED
    assert e.deadline_met()
    assert e.executed_on == "mdc-0"
    assert e.network_delay_s < 0.15  # building radio + metro hops, no WAN


def test_micro_dc_routes_edge_by_district():
    b = MicroDatacenterBaseline(n_districts=2, start_time=WINTER)
    e = edge(WINTER + 10.0, source="district-1/building-0")
    b.inject([e])
    b.run_until(WINTER + HOUR)
    assert e.executed_on == "mdc-1"


def test_micro_dc_rejects_heat_outdoors():
    b = MicroDatacenterBaseline(n_districts=1, start_time=WINTER)
    b.inject([cloud(WINTER + 10.0)])
    b.run_until(WINTER + HOUR)
    assert b.ledger.total_outdoor_j > 0  # cooling rejection booked


def test_micro_dc_worse_pue_than_hyperscale():
    b = MicroDatacenterBaseline(n_districts=1)
    assert b.micro_dcs[0].nodes[0].cooling_overhead > 0.35


# --------------------------------------------------------------------------- #
# desktop grid
# --------------------------------------------------------------------------- #
def test_desktop_grid_runs_work_in_idle_window():
    b = DesktopGridBaseline(n_desktops=2, start_time=WINTER)  # 00:00, owners absent
    c = cloud(WINTER + 10.0, cycles=GHZ)
    b.inject([c])
    b.run_until(WINTER + HOUR)
    assert c.status is RequestStatus.COMPLETED


def test_desktop_grid_suspends_for_owner():
    b = DesktopGridBaseline(n_desktops=1, start_time=WINTER, owner_hours=(18.0, 23.0))
    # multi-hour job submitted in the afternoon; owner arrives at 18:00
    c = cloud(WINTER + 17.5 * HOUR, cycles=4e14, cores=8)
    b.inject([c])
    b.run_until(WINTER + 20 * HOUR)
    assert b.suspensions >= 1
    assert c.status is RequestStatus.QUEUED  # parked while owner present
    b.run_until(WINTER + 2 * DAY)
    assert c.status is RequestStatus.COMPLETED  # resumed overnight


def test_desktop_grid_edge_misses_during_owner_hours():
    b = DesktopGridBaseline(n_desktops=1, start_time=WINTER, owner_hours=(18.0, 23.0))
    e = edge(WINTER + 19 * HOUR)  # arrives while owner present
    b.inject([e])
    b.run_until(WINTER + 20 * HOUR)
    assert e.status is RequestStatus.QUEUED
    assert b.edge_deadline_miss_rate() == 1.0


def test_desktop_grid_noise_discomfort_counted():
    b = DesktopGridBaseline(n_desktops=1, start_time=WINTER, owner_hours=(18.0, 23.0))
    # grid work running as the owner arrives → preempted on the next tick,
    # but the partial tick of co-presence counts as noise discomfort
    c = cloud(WINTER + 17.9 * HOUR, cycles=1e14, cores=8)
    b.inject([c])
    b.run_until(WINTER + 18.2 * HOUR)
    assert b.noise_discomfort_hours > 0


def test_desktop_grid_unwanted_summer_heat():
    b = DesktopGridBaseline(n_desktops=1, start_time=200 * DAY)  # July
    c = cloud(200 * DAY + 10.0, cycles=1e13, cores=8)
    b.inject([c])
    b.run_until(200 * DAY + 6 * HOUR)
    assert b.unwanted_heat_kwh > 0


def test_desktop_grid_validation():
    with pytest.raises(ValueError):
        DesktopGridBaseline(n_desktops=0)
    with pytest.raises(ValueError):
        DesktopGridBaseline(owner_hours=(23.0, 18.0))
