"""Tests for the boiler water loop."""

import numpy as np
import pytest

from repro.thermal.hydronics import WATER_CP, DrawProfile, WaterLoop, WaterLoopConfig


def test_draw_profile_integrates_to_daily_volume():
    p = DrawProfile(daily_litres=600.0)
    hours = np.linspace(0, 24, 24 * 60, endpoint=False)
    total = sum(p.draw_rate_lps(h) * 60.0 for h in hours)
    assert total == pytest.approx(600.0, rel=0.1)


def test_draw_profile_peaks_morning_evening():
    p = DrawProfile()
    assert p.draw_rate_lps(7.5) > p.draw_rate_lps(3.0)
    assert p.draw_rate_lps(19.5) > p.draw_rate_lps(14.0)


def test_heat_input_raises_tank_temperature():
    loop = WaterLoop(WaterLoopConfig(), t_init_c=40.0)
    quiet = DrawProfile(daily_litres=0.0)
    t0 = loop.t_tank
    useful, dumped = loop.step(3600.0, p_in_w=5000.0, hour_of_day=3.0, profile=quiet)
    assert loop.t_tank > t0
    assert useful == pytest.approx(5000.0)
    assert dumped == 0.0


def test_energy_conservation_of_heat_input():
    cfg = WaterLoopConfig(loss_coeff_w_per_k=0.0)
    loop = WaterLoop(cfg, t_init_c=40.0)
    quiet = DrawProfile(daily_litres=0.0)
    loop.step(3600.0, p_in_w=2000.0, hour_of_day=3.0, profile=quiet)
    # dT = E / (m cp)
    expected_dt = 2000.0 * 3600.0 / (cfg.tank_litres * WATER_CP)
    assert loop.t_tank == pytest.approx(40.0 + expected_dt, rel=1e-6)


def test_overflow_dumps_heat_at_ceiling():
    cfg = WaterLoopConfig(t_max_c=75.0)
    loop = WaterLoop(cfg, t_init_c=74.9)
    quiet = DrawProfile(daily_litres=0.0)
    useful, dumped = loop.step(3600.0, p_in_w=20000.0, hour_of_day=3.0, profile=quiet)
    assert loop.t_tank == pytest.approx(75.0)
    assert dumped > 0.0
    assert useful + dumped == pytest.approx(20000.0)
    assert loop.waste_fraction > 0.0


def test_draw_cools_tank():
    loop = WaterLoop(WaterLoopConfig(), t_init_c=60.0)
    busy = DrawProfile(daily_litres=5000.0)
    loop.step(3600.0, p_in_w=0.0, hour_of_day=7.5, profile=busy)
    assert loop.t_tank < 60.0
    assert loop.drawn_litres > 0.0


def test_unmet_draw_recorded_when_tank_cold():
    cfg = WaterLoopConfig(t_target_c=55.0)
    loop = WaterLoop(cfg, t_init_c=30.0)
    busy = DrawProfile(daily_litres=5000.0)
    loop.step(3600.0, p_in_w=0.0, hour_of_day=7.5, profile=busy)
    assert loop.unmet_draw_degree_litres > 0.0


def test_standing_losses_cool_idle_tank():
    loop = WaterLoop(WaterLoopConfig(loss_coeff_w_per_k=10.0), t_init_c=60.0)
    quiet = DrawProfile(daily_litres=0.0)
    for _ in range(48):
        loop.step(3600.0, p_in_w=0.0, hour_of_day=3.0, profile=quiet)
    assert loop.t_tank < 60.0


def test_headroom_shrinks_as_tank_heats():
    loop = WaterLoop(WaterLoopConfig(), t_init_c=40.0)
    h0 = loop.headroom_w
    quiet = DrawProfile(daily_litres=0.0)
    loop.step(3600.0, p_in_w=10000.0, hour_of_day=3.0, profile=quiet)
    assert loop.headroom_w < h0


def test_invalid_configs():
    with pytest.raises(ValueError):
        WaterLoop(WaterLoopConfig(tank_litres=0.0))
    with pytest.raises(ValueError):
        WaterLoop(WaterLoopConfig(t_cold_c=60.0, t_target_c=55.0))
    loop = WaterLoop(WaterLoopConfig())
    with pytest.raises(ValueError):
        loop.step(0.0, 100.0, 3.0, DrawProfile())
    with pytest.raises(ValueError):
        loop.step(60.0, -5.0, 3.0, DrawProfile())
