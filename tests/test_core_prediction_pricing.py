"""Tests for the thermosensitivity predictor and seasonal pricing."""

import numpy as np
import pytest

from repro.core.prediction import ThermosensitivityModel
from repro.core.pricing import PricingModel, SeasonalPricing
from repro.sim.rng import RngRegistry


# --------------------------------------------------------------------------- #
# thermosensitivity
# --------------------------------------------------------------------------- #
def synthetic_demand(temps, s=120.0, base=17.0, noise=0.0, rng=None):
    d = s * np.maximum(base - temps, 0.0)
    if noise > 0:
        d = np.maximum(d + rng.normal(0, noise, size=d.shape), 0.0)
    return d


def test_recovers_true_parameters():
    rng = RngRegistry(0).stream("p")
    temps = rng.uniform(-5, 25, size=500)
    demand = synthetic_demand(temps, s=120.0, base=17.0)
    m = ThermosensitivityModel()
    s, base = m.fit(temps, demand)
    assert s == pytest.approx(120.0, rel=0.05)
    assert base == pytest.approx(17.0, abs=0.5)
    assert m.r2 > 0.99


def test_noisy_fit_still_good():
    rng = RngRegistry(1).stream("p")
    temps = rng.uniform(-5, 25, size=1000)
    demand = synthetic_demand(temps, s=100.0, base=18.0, noise=150.0, rng=rng)
    m = ThermosensitivityModel()
    s, base = m.fit(temps, demand)
    assert s == pytest.approx(100.0, rel=0.15)
    assert m.r2 > 0.7


def test_predict_shapes_and_clipping():
    m = ThermosensitivityModel()
    m.fit(np.array([0.0, 10.0, 20.0]), np.array([1800.0, 800.0, 0.0]))
    assert m.predict(30.0) == 0.0  # above base: no demand
    out = m.predict(np.array([0.0, 30.0]))
    assert out.shape == (2,)
    assert out[0] > 0 and out[1] == 0.0


def test_predict_before_fit_raises():
    with pytest.raises(RuntimeError):
        ThermosensitivityModel().predict(10.0)


def test_fit_validation():
    m = ThermosensitivityModel()
    with pytest.raises(ValueError):
        m.fit(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
    with pytest.raises(ValueError):
        m.fit(np.array([1.0, 2.0, 3.0]), np.array([1.0, -2.0, 3.0]))


def test_capacity_forecast():
    m = ThermosensitivityModel()
    temps = np.linspace(-5, 25, 200)
    m.fit(temps, synthetic_demand(temps))
    cores = m.predict_capacity_cores(np.array([0.0, 25.0]), watts_per_core=30.0,
                                     fleet_cores=100)
    assert cores[0] > cores[1] == 0.0
    assert cores[0] <= 100
    with pytest.raises(ValueError):
        m.predict_capacity_cores(0.0, watts_per_core=0.0, fleet_cores=10)


# --------------------------------------------------------------------------- #
# pricing
# --------------------------------------------------------------------------- #
def winterish_capacity():
    # winter-heavy capacity in core-hours
    return {1: 900.0, 2: 850.0, 6: 150.0, 7: 100.0, 8: 120.0, 12: 950.0}


def test_winter_cheaper_than_summer():
    p = SeasonalPricing(winterish_capacity())
    assert p.spot_price(1) < p.spot_price(7)


def test_price_bounds_respected():
    model = PricingModel(base_price_per_core_hour=0.02, floor_factor=0.5, cap_factor=3.0)
    # near-zero summer capacity → price capped at 3× base
    p = SeasonalPricing({1: 1e6, 7: 1.0}, model)
    assert p.spot_price(7) == pytest.approx(0.06)
    # one month holding ~12× its peers' mean → price floored at 0.5× base
    caps = {m: 1.0 for m in range(2, 13)}
    caps[1] = 1200.0
    p2 = SeasonalPricing(caps, model)
    assert p2.spot_price(1) == pytest.approx(0.01)
    for month in caps:
        assert 0.01 <= p2.spot_price(month) <= 0.06


def test_zero_capacity_priced_at_cap():
    p = SeasonalPricing({1: 0.0, 7: 100.0})
    assert p.spot_price(1) == p.model.base_price_per_core_hour * p.model.cap_factor


def test_winter_summer_ratio():
    p = SeasonalPricing(winterish_capacity())
    ratio = p.winter_summer_ratio()
    assert ratio == pytest.approx((900 + 850 + 950) / (150 + 100 + 120))
    with pytest.raises(ValueError):
        SeasonalPricing({1: 10.0}).winter_summer_ratio()


def test_revenue_and_oversell():
    p = SeasonalPricing(winterish_capacity())
    assert p.monthly_revenue(1, 100.0) == pytest.approx(100.0 * p.spot_price(1))
    with pytest.raises(ValueError):
        p.monthly_revenue(1, 1e6)
    with pytest.raises(ValueError):
        p.monthly_revenue(1, -1.0)


def test_host_subsidy():
    p = SeasonalPricing(winterish_capacity())
    assert p.host_subsidy_eur(1000.0) == pytest.approx(170.0)
    with pytest.raises(ValueError):
        p.host_subsidy_eur(-1.0)


def test_validation():
    with pytest.raises(ValueError):
        SeasonalPricing({})
    with pytest.raises(ValueError):
        SeasonalPricing({13: 10.0})
    with pytest.raises(ValueError):
        SeasonalPricing({1: -5.0})
    with pytest.raises(ValueError):
        PricingModel(base_price_per_core_hour=0.0)
    with pytest.raises(ValueError):
        PricingModel(floor_factor=1.5)
    with pytest.raises(KeyError):
        SeasonalPricing({1: 10.0}).spot_price(2)


def test_price_table_covers_recorded_months():
    p = SeasonalPricing(winterish_capacity())
    table = p.price_table()
    assert set(table) == set(winterish_capacity())
    assert all(v > 0 for v in table.values())
