"""Tests for trace record/replay."""

import pytest

from repro.workloads.traces import Trace, TraceEvent


def test_append_and_iterate_sorted():
    tr = Trace()
    tr.append(5.0, "b")
    tr.append(1.0, "a", x=1)
    events = list(tr)
    assert [e.time for e in events] == [1.0, 5.0]
    assert events[0].payload == {"x": 1}
    assert len(tr) == 2


def test_kind_filter_and_window():
    tr = Trace()
    tr.append(1.0, "edge")
    tr.append(2.0, "cloud")
    tr.append(3.0, "edge")
    assert len(tr.events_of_kind("edge")) == 2
    w = tr.window(1.5, 3.0)
    assert [e.kind for e in w] == ["cloud"]


def test_empty_kind_rejected():
    with pytest.raises(ValueError):
        Trace().append(0.0, "")


def test_save_load_roundtrip(tmp_path):
    tr = Trace()
    tr.append(2.5, "edge", cycles=1e8, deadline=0.5)
    tr.append(1.0, "heat", target=21.0)
    p = tmp_path / "trace.jsonl"
    tr.save(p)
    back = Trace.load(p)
    assert len(back) == 2
    events = list(back)
    assert events[0].kind == "heat"
    assert events[1].payload["deadline"] == 0.5


def test_load_malformed_raises(tmp_path):
    p = tmp_path / "bad.jsonl"
    p.write_text('{"time": 1.0, "kind": "x"}\nnot json\n')
    with pytest.raises(ValueError, match="malformed"):
        Trace.load(p)


def test_load_skips_blank_lines(tmp_path):
    p = tmp_path / "t.jsonl"
    p.write_text('{"time": 1.0, "kind": "x", "payload": {}}\n\n')
    assert len(Trace.load(p)) == 1
