"""Tests for JSON/CSV export of experiment results."""

import csv
import json

import pytest

from repro.experiments.common import ExperimentResult
from repro.metrics.export import flatten, to_csv, to_json


def result(eid="E1", **data):
    return ExperimentResult(experiment_id=eid, title=f"t-{eid}",
                            text="table", data=data or {"x": 1.0})


def test_flatten_nested():
    flat = flatten({"a": {"b": 1, "c": {"d": 2}}, "e": 3})
    assert flat == {"a.b": 1, "a.c.d": 2, "e": 3}


def test_flatten_handles_nan_inf():
    flat = flatten({"x": float("nan"), "y": float("inf")})
    assert flat["x"] == "nan"
    assert flat["y"] == "inf"


def test_to_json_roundtrip(tmp_path):
    r = result(pue=1.35, nested={"a": 2})
    p = to_json(r, tmp_path / "e1.json")
    back = json.loads(p.read_text())
    assert back["experiment_id"] == "E1"
    assert back["data"]["pue"] == 1.35
    assert back["data"]["nested"]["a"] == 2


def test_to_json_stringifies_exotic_values(tmp_path):
    r = result(weird=object(), bad=float("nan"))
    p = to_json(r, tmp_path / "e.json")
    back = json.loads(p.read_text())
    assert isinstance(back["data"]["weird"], str)
    assert back["data"]["bad"] == "nan"


def test_to_csv_union_of_keys(tmp_path):
    r1 = result("E1", pue=1.0)
    r2 = result("E2", latency={"p50": 0.1, "p95": 0.3})
    p = to_csv([r1, r2], tmp_path / "all.csv")
    rows = list(csv.DictReader(p.open()))
    assert len(rows) == 2
    assert rows[0]["pue"] == "1.0"
    assert rows[1]["latency.p50"] == "0.1"
    assert rows[0]["latency.p50"] == ""  # missing key → empty cell


def test_to_csv_empty_rejected(tmp_path):
    with pytest.raises(ValueError):
        to_csv([], tmp_path / "x.csv")
