"""Tests for JSON/CSV export of experiment results."""

import csv
import json

import numpy as np
import pytest

from repro.experiments.common import ExperimentResult
from repro.metrics.export import flatten, metrics_to_json, to_csv, to_json
from repro.obs import MetricsRegistry


def result(eid="E1", **data):
    return ExperimentResult(experiment_id=eid, title=f"t-{eid}",
                            text="table", data=data or {"x": 1.0})


def test_flatten_nested():
    flat = flatten({"a": {"b": 1, "c": {"d": 2}}, "e": 3})
    assert flat == {"a.b": 1, "a.c.d": 2, "e": 3}


def test_flatten_handles_nan_inf():
    flat = flatten({"x": float("nan"), "y": float("inf")})
    assert flat["x"] == "nan"
    assert flat["y"] == "inf"


def test_to_json_roundtrip(tmp_path):
    r = result(pue=1.35, nested={"a": 2})
    p = to_json(r, tmp_path / "e1.json")
    back = json.loads(p.read_text())
    assert back["experiment_id"] == "E1"
    assert back["data"]["pue"] == 1.35
    assert back["data"]["nested"]["a"] == 2


def test_to_json_stringifies_exotic_values(tmp_path):
    r = result(weird=object(), bad=float("nan"))
    p = to_json(r, tmp_path / "e.json")
    back = json.loads(p.read_text())
    assert isinstance(back["data"]["weird"], str)
    assert back["data"]["bad"] == "nan"


def test_to_csv_union_of_keys(tmp_path):
    r1 = result("E1", pue=1.0)
    r2 = result("E2", latency={"p50": 0.1, "p95": 0.3})
    p = to_csv([r1, r2], tmp_path / "all.csv")
    rows = list(csv.DictReader(p.open()))
    assert len(rows) == 2
    assert rows[0]["pue"] == "1.0"
    assert rows[1]["latency.p50"] == "0.1"
    assert rows[0]["latency.p50"] == ""  # missing key → empty cell


def test_to_csv_empty_rejected(tmp_path):
    with pytest.raises(ValueError):
        to_csv([], tmp_path / "x.csv")


# --------------------------------------------------------------------------- #
# numpy values must export as numbers, not as their repr strings
# --------------------------------------------------------------------------- #
def test_to_json_numpy_scalars(tmp_path):
    r = result(i64=np.int64(7), f32=np.float32(1.5), f64=np.float64(2.5),
               flag=np.bool_(True), nan32=np.float32("nan"))
    back = json.loads(to_json(r, tmp_path / "n.json").read_text())
    assert back["data"]["i64"] == 7
    assert back["data"]["f32"] == 1.5
    assert back["data"]["f64"] == 2.5
    assert back["data"]["flag"] is True
    assert back["data"]["nan32"] == "nan"  # NaN policy applies post-unwrap


def test_to_json_numpy_arrays(tmp_path):
    r = result(arr=np.array([1.0, 2.0, 3.0]),
               mat=np.array([[1, 2], [3, 4]], dtype=np.int64))
    back = json.loads(to_json(r, tmp_path / "a.json").read_text())
    assert back["data"]["arr"] == [1.0, 2.0, 3.0]
    assert back["data"]["mat"] == [[1, 2], [3, 4]]


def test_flatten_numpy_values():
    flat = flatten({"a": np.int64(3), "b": {"c": np.float32(0.5)}})
    assert flat["a"] == 3 and isinstance(flat["a"], int)
    assert flat["b.c"] == 0.5 and isinstance(flat["b.c"], float)


def test_full_roundtrip_json_csv(tmp_path):
    r = result("E9", nested={"x": np.float64(1.25), "y": 2},
               arr=np.arange(3), scalar=7)
    back = json.loads(to_json(r, tmp_path / "r.json").read_text())
    assert back["data"] == {"nested": {"x": 1.25, "y": 2},
                            "arr": [0, 1, 2], "scalar": 7}
    rows = list(csv.DictReader(to_csv([r], tmp_path / "r.csv").open()))
    assert rows[0]["nested.x"] == "1.25"
    assert rows[0]["scalar"] == "7"


# --------------------------------------------------------------------------- #
# metrics registry export (the obs wiring)
# --------------------------------------------------------------------------- #
def test_metrics_to_json_from_registry(tmp_path):
    reg = MetricsRegistry()
    reg.counter("done", flow="edge").inc(4)
    reg.histogram("lat").observe(np.float64(0.5))
    back = json.loads(metrics_to_json(reg, tmp_path / "m.json").read_text())
    assert back["done{flow=edge}"] == 4
    assert back["lat"]["count"] == 1


def test_metrics_to_json_from_snapshot_dict(tmp_path):
    back = json.loads(
        metrics_to_json({"x": np.int64(2)}, tmp_path / "s.json").read_text())
    assert back == {"x": 2}
