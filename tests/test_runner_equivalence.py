"""Serial vs parallel vs cached: byte-identical output, always.

The runner's determinism contract (DESIGN.md, "Sweep runner"): for a fixed
seed, ``jobs=1``, ``jobs=N``, and a warm cache hit all produce the same
``ExperimentResult.text``, byte for byte.  These tests drive the ported
sweep experiments through all three paths; the fast tier uses the quick
sweeps (E4, E14, A4 and a reduced-fidelity E3), the full tier adds A6 at
full fidelity and a whole ``run all`` warm-cache pass.
"""

from __future__ import annotations

import re

import pytest

from repro.cli import main
from repro.experiments import (
    a4_demand_response,
    a6_churn,
    e3_seasonal_capacity,
    e4_architectures,
    e14_scale,
)
from repro.runner import ResultCache, SweepRunner

FAST_SWEEPS = [
    pytest.param(e4_architectures, {}, id="E4"),
    pytest.param(e14_scale, {}, id="E14"),
    pytest.param(a4_demand_response, {}, id="A4"),
    pytest.param(e3_seasonal_capacity, {"days_per_month": 0.1}, id="E3-reduced"),
]


@pytest.mark.parametrize("mod,kwargs", FAST_SWEEPS)
def test_serial_parallel_cached_equivalence(tmp_path, mod, kwargs):
    serial = SweepRunner(jobs=1).run_spec(mod.SWEEP, **kwargs)
    assert serial.computed == serial.points > 0

    cache = ResultCache(tmp_path / "cache")
    parallel = SweepRunner(jobs=2, cache=cache).run_spec(mod.SWEEP, **kwargs)
    assert parallel.result.text == serial.result.text
    assert parallel.computed == parallel.points  # cold cache: all executed

    warm = SweepRunner(jobs=1, cache=cache).run_spec(mod.SWEEP, **kwargs)
    assert warm.fully_cached
    assert warm.cached == warm.points
    assert warm.result.text == serial.result.text


@pytest.mark.dag
@pytest.mark.parametrize("mod,kwargs", FAST_SWEEPS)
def test_backend_cross_equivalence(tmp_path, mod, kwargs):
    """flat × dag × serial × parallel × warm cache: one text, byte for byte."""
    reference = SweepRunner(jobs=1, backend="flat").run_spec(
        mod.SWEEP, **kwargs).result.text

    flat_cache = ResultCache(tmp_path / "flat")
    dag_cache = ResultCache(tmp_path / "dag")
    runs = {
        "flat/jobs=2": SweepRunner(jobs=2, cache=flat_cache, backend="flat"),
        "dag/jobs=1": SweepRunner(jobs=1, backend="dag"),
        "dag/jobs=2": SweepRunner(jobs=2, cache=dag_cache, backend="dag"),
        "dag/warm": SweepRunner(jobs=1, cache=dag_cache, backend="dag"),
        "flat/warm": SweepRunner(jobs=1, cache=flat_cache, backend="flat"),
    }
    for label, runner in runs.items():
        report = runner.run_spec(mod.SWEEP, **kwargs)
        assert report.result.text == reference, f"{label} diverged"
        if label.endswith("warm"):
            assert report.fully_cached, f"{label} recomputed something"


@pytest.mark.dag
def test_dag_backend_deduplicates_shared_prefixes():
    """E3's two fleet blueprints each run once for their twelve months."""
    report = SweepRunner(jobs=1, backend="dag").run_spec(
        e3_seasonal_capacity.SWEEP, days_per_month=0.05)
    assert report.points == 24
    assert report.nodes == 26               # + 2 per-flavour blueprints
    assert report.computed_nodes == 26      # each prefix computed exactly once


@pytest.mark.dag
def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "flat")
    assert SweepRunner().backend == "flat"
    monkeypatch.setenv("REPRO_BACKEND", "dag")
    assert SweepRunner().backend == "dag"
    monkeypatch.delenv("REPRO_BACKEND")
    assert SweepRunner().backend == "dag"   # the default
    monkeypatch.setenv("REPRO_BACKEND", "bogus")
    with pytest.raises(ValueError, match="REPRO_BACKEND"):
        SweepRunner()


@pytest.mark.parametrize("mod,kwargs", FAST_SWEEPS)
def test_cache_key_depends_on_kwargs(tmp_path, mod, kwargs):
    """A different seed must never hit the other seed's cache entries."""
    cache = ResultCache(tmp_path / "cache")
    SweepRunner(jobs=1, cache=cache).run_spec(mod.SWEEP, **kwargs, seed=1)
    other = SweepRunner(jobs=1, cache=cache).run_spec(mod.SWEEP, **kwargs, seed=2)
    assert other.cached == 0


def test_surrogate_kernel_serial_parallel_cached_equivalence(
        tmp_path, monkeypatch):
    """The determinism contract holds under the surrogate tier too: jobs=1,
    jobs=2, flat, dag and a warm cache hit all emit one text byte for byte
    when ``REPRO_KERNEL=surrogate`` (workers inherit the env var)."""
    monkeypatch.setenv("REPRO_KERNEL", "surrogate")
    reference = SweepRunner(jobs=1, backend="flat").run_spec(
        e14_scale.SWEEP).result.text

    cache = ResultCache(tmp_path / "cache")
    runs = {
        "flat/jobs=2": SweepRunner(jobs=2, cache=cache, backend="flat"),
        "dag/jobs=1": SweepRunner(jobs=1, backend="dag"),
        "flat/warm": SweepRunner(jobs=1, cache=cache, backend="flat"),
    }
    for label, runner in runs.items():
        report = runner.run_spec(e14_scale.SWEEP)
        assert report.result.text == reference, f"{label} diverged"
        if label.endswith("warm"):
            assert report.fully_cached, f"{label} recomputed something"


def test_surrogate_kernel_namespaces_the_cache(tmp_path, monkeypatch):
    """A vector-warmed cache must never serve surrogate runs (the outputs
    legitimately differ within the tolerance budget), and vice versa — the
    kernel tag is part of every point/result/node key."""
    cache = ResultCache(tmp_path / "cache")
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    SweepRunner(jobs=1, cache=cache).run_spec(e14_scale.SWEEP)

    monkeypatch.setenv("REPRO_KERNEL", "surrogate")
    cold = SweepRunner(jobs=1, cache=cache).run_spec(e14_scale.SWEEP)
    assert cold.cached == 0                  # vector entries invisible
    warm = SweepRunner(jobs=1, cache=cache).run_spec(e14_scale.SWEEP)
    assert warm.fully_cached                 # surrogate entries round-trip

    monkeypatch.delenv("REPRO_KERNEL")
    back = SweepRunner(jobs=1, cache=cache).run_spec(e14_scale.SWEEP)
    assert back.fully_cached                 # vector entries still intact


def _completion_lines(out: str):
    """[(experiment id, detail)] from the CLI's per-experiment status lines."""
    return re.findall(r"\((\w+) completed in [\d.]+s(.*?)\)", out)


def test_cli_jobs_byte_identical(tmp_path, capsys):
    """`run E14 --jobs 2` prints the same result block as `--jobs 1`."""
    assert main(["run", "E14", "--jobs", "1", "--no-cache"]) == 0
    serial = capsys.readouterr().out.split("(E14 completed")[0]
    assert main(["run", "E14", "--jobs", "2", "--no-cache"]) == 0
    parallel = capsys.readouterr().out.split("(E14 completed")[0]
    assert parallel == serial


@pytest.mark.dag
def test_cli_backend_flag_byte_identical(capsys):
    """`run E4 --backend flat` ≡ `--backend dag`, serial and parallel."""
    blocks = {}
    for backend in ("flat", "dag"):
        for jobs in ("1", "2"):
            assert main(["run", "E4", "--backend", backend,
                         "--jobs", jobs, "--no-cache"]) == 0
            blocks[f"{backend}/{jobs}"] = \
                capsys.readouterr().out.split("(E4 completed")[0]
    assert len(set(blocks.values())) == 1, blocks.keys()


def test_parallel_trace_merge_byte_identical():
    """--trace with --jobs N loses nothing: worker records merge back into
    the parent tracer deterministically, so the trace is record-for-record
    identical to a serial run (satellite of the causal-tracing PR)."""
    from repro import obs as O

    def traced_run(jobs):
        tracer = O.Tracer()
        with O.obs_session(O.Observability(tracer=tracer)) as obs:
            report = SweepRunner(jobs=jobs, obs=obs).run_spec(e14_scale.SWEEP)
        return report.result.text, [r.to_dict() for r in tracer.iter_records()]

    text1, trace1 = traced_run(1)
    text2, trace2 = traced_run(2)
    assert trace1, "traced sweep produced no records"
    assert text2 == text1
    assert trace2 == trace1          # same records, same order — nothing lost


def test_cli_warm_cache_skips_all_points(tmp_path, capsys):
    """A warm re-run recomputes nothing, sweep and non-sweep alike."""
    ids = ["E14", "E4", "A4", "E2"]
    for eid in ids:
        assert main(["run", eid, "--cache-dir", str(tmp_path)]) == 0
    capsys.readouterr()
    for eid in ids:
        assert main(["run", eid, "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    lines = dict(_completion_lines(out))
    assert set(lines) == set(ids)
    for eid in ("E14", "E4", "A4"):  # sweep-shaped: every point cached
        assert re.search(r": 0 computed, \d+ cached", lines[eid]), lines[eid]
    assert lines["E2"] == "; result cached"  # non-sweep: whole result cached


def test_cli_no_cache_flag(tmp_path, capsys):
    """--no-cache ignores a warm cache and recomputes every point."""
    assert main(["run", "E14", "--cache-dir", str(tmp_path)]) == 0
    capsys.readouterr()
    assert main(["run", "E14", "--no-cache", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "3 points: 3 computed, 0 cached" in out
    assert "cache " not in out  # no cache session summary when disabled


def test_cli_rejects_bad_jobs(capsys):
    assert main(["run", "E14", "--jobs", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# full tier: the acceptance-criteria runs at full fidelity
# --------------------------------------------------------------------------- #
@pytest.mark.slow
def test_cli_a6_jobs4_byte_identical(capsys):
    """`python -m repro run a6 --jobs 4` ≡ `--jobs 1` (acceptance criterion)."""
    assert main(["run", "a6", "--jobs", "1", "--no-cache"]) == 0
    serial = capsys.readouterr().out.split("(A6 completed")[0]
    assert main(["run", "a6", "--jobs", "4", "--no-cache"]) == 0
    parallel = capsys.readouterr().out.split("(A6 completed")[0]
    assert parallel == serial


@pytest.mark.slow
def test_run_all_warm_cache_skips_every_point(tmp_path, capsys):
    """A warm `run all` executes nothing at all (acceptance criterion)."""
    assert main(["run", "all", "--cache-dir", str(tmp_path)]) == 0
    capsys.readouterr()
    assert main(["run", "all", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    lines = _completion_lines(out)
    assert len(lines) == 22
    for eid, detail in lines:
        assert re.search(r": 0 computed, \d+ cached", detail) \
            or detail == "; result cached", (eid, detail)
