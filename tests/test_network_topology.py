"""Tests for the city topology."""

import pytest

from repro.network.link import Link
from repro.network.topology import CityTopology, NodeKind


@pytest.fixture()
def city():
    return CityTopology.build(n_districts=3, buildings_per_district=4)


def test_build_counts(city):
    assert len(city.nodes_of_kind(NodeKind.DATACENTER)) == 1
    assert len(city.nodes_of_kind(NodeKind.MASTER)) == 3
    assert len(city.nodes_of_kind(NodeKind.BUILDING)) == 12


def test_buildings_of_district(city):
    bs = city.buildings_of_district(1)
    assert len(bs) == 4
    assert all(b.startswith("district-1/") for b in bs)


def test_kind_lookup(city):
    assert city.kind("dc") is NodeKind.DATACENTER
    with pytest.raises(KeyError):
        city.kind("ghost")


def test_duplicate_node_rejected():
    topo = CityTopology()
    topo.add_node("a", NodeKind.BUILDING)
    with pytest.raises(ValueError):
        topo.add_node("a", NodeKind.BUILDING)


def test_connect_unknown_node_rejected():
    topo = CityTopology()
    topo.add_node("a", NodeKind.BUILDING)
    with pytest.raises(KeyError):
        topo.connect("a", "b", Link("l", 0.001, 1e9))


def test_building_to_own_master_is_one_hop(city):
    assert city.hops("district-0/building-0", "district-0/master") == 1


def test_building_to_dc_goes_through_master(city):
    p = city.path("district-0/building-0", "dc")
    assert p == ["district-0/building-0", "district-0/master", "dc"]


def test_latency_ordering_local_metro_wan(city):
    """Intra-building < intra-district < inter-district < to-datacenter."""
    b0, b1 = "district-0/building-0", "district-0/building-1"
    size = 1000.0
    intra_district = city.expected_path_delay(b0, b1, size)
    inter_district = city.expected_path_delay(b0, "district-1/building-0", size)
    to_dc = city.expected_path_delay(b0, "dc", size)
    assert intra_district < inter_district
    assert intra_district < to_dc


def test_ring_connects_districts(city):
    # horizontal offload path never needs the datacenter
    p = city.path("district-0/master", "district-1/master")
    assert "dc" not in p


def test_path_delay_positive_and_additive(city):
    d1 = city.expected_path_delay("district-0/building-0", "district-0/master", 100.0)
    d2 = city.expected_path_delay("district-0/master", "dc", 100.0)
    d12 = city.expected_path_delay("district-0/building-0", "dc", 100.0)
    assert d12 == pytest.approx(d1 + d2)


def test_single_district_city():
    c = CityTopology.build(n_districts=1, buildings_per_district=2)
    assert len(c.nodes_of_kind(NodeKind.MASTER)) == 1
    assert c.hops("district-0/building-0", "dc") == 2


def test_invalid_build_params():
    with pytest.raises(ValueError):
        CityTopology.build(n_districts=0)
    with pytest.raises(ValueError):
        CityTopology.build(buildings_per_district=0)


def test_iter_links(city):
    links = list(city.iter_links())
    # 12 street links + 3 wan + 3 ring metro links
    assert len(links) == 18
