"""Tests for DVFS ladders."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cpu import DVFSLadder, PState


def test_pstate_validation():
    with pytest.raises(ValueError):
        PState(0.0, 1.0)
    with pytest.raises(ValueError):
        PState(2.0, -1.0)


def test_ladder_ordering_enforced():
    with pytest.raises(ValueError):
        DVFSLadder([PState(2.0, 1.0), PState(1.0, 0.9)])
    with pytest.raises(ValueError):
        DVFSLadder([PState(1.0, 1.0), PState(2.0, 0.9)])  # voltage decreasing
    with pytest.raises(ValueError):
        DVFSLadder([])


def test_top_bottom_and_indexing():
    lad = DVFSLadder.intel_like()
    assert lad.bottom.freq_ghz < lad.top.freq_ghz
    assert lad[0] == lad.bottom
    assert lad[len(lad) - 1] == lad.top


def test_power_scale_top_is_one_and_monotone():
    lad = DVFSLadder.intel_like()
    scales = [lad.power_scale(i) for i in range(len(lad))]
    assert scales[-1] == pytest.approx(1.0)
    assert all(a < b for a, b in zip(scales, scales[1:]))
    assert all(0 < s <= 1 for s in scales)


def test_speed_scale_monotone():
    lad = DVFSLadder.intel_like()
    speeds = [lad.speed_scale(i) for i in range(len(lad))]
    assert speeds[-1] == pytest.approx(1.0)
    assert all(a < b for a, b in zip(speeds, speeds[1:]))


def test_dvfs_power_drops_faster_than_speed():
    """The f·V² law: halving frequency saves more power than speed (ref [17])."""
    lad = DVFSLadder.intel_like()
    assert lad.power_scale(0) < lad.speed_scale(0)


def test_index_for_power_budget():
    lad = DVFSLadder.intel_like()
    assert lad.index_for_power_budget(1.0) == len(lad) - 1
    assert lad.index_for_power_budget(0.0) == 0  # floor state always allowed
    mid = lad.index_for_power_budget(0.5)
    assert lad.power_scale(mid) <= 0.5 + 1e-9
    if mid + 1 < len(lad):
        assert lad.power_scale(mid + 1) > 0.5


def test_single_state_ladder():
    lad = DVFSLadder.intel_like(n_states=1)
    assert len(lad) == 1
    assert lad.power_scale(0) == 1.0
    with pytest.raises(ValueError):
        DVFSLadder.intel_like(n_states=0)


@settings(max_examples=30, deadline=None)
@given(budget=st.floats(min_value=0.0, max_value=1.0))
def test_property_budget_selection_is_maximal(budget):
    lad = DVFSLadder.intel_like(n_states=8)
    i = lad.index_for_power_budget(budget)
    # the chosen state respects the budget (or is the floor)
    assert i == 0 or lad.power_scale(i) <= budget + 1e-9
    # and no faster state would also respect it
    for j in range(i + 1, len(lad)):
        assert lad.power_scale(j) > budget - 1e-9
