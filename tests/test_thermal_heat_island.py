"""Tests for the urban-heat-island ledger."""

import pytest

from repro.thermal.heat_island import HeatIslandLedger, OutdoorHeatSource


def test_accumulates_by_source():
    led = HeatIslandLedger()
    led.add_outdoor(OutdoorHeatSource.DC_COOLING, 100.0)
    led.add_outdoor(OutdoorHeatSource.DC_COOLING, 50.0)
    led.add_outdoor(OutdoorHeatSource.BOILER_OVERFLOW, 25.0)
    assert led.outdoor_j(OutdoorHeatSource.DC_COOLING) == 150.0
    assert led.total_outdoor_j == 175.0


def test_waste_heat_index():
    led = HeatIslandLedger()
    led.add_outdoor(OutdoorHeatSource.DC_COOLING, 300.0)
    led.add_useful_compute(100.0)
    assert led.waste_heat_index() == pytest.approx(3.0)


def test_waste_heat_index_degenerate_cases():
    led = HeatIslandLedger()
    assert led.waste_heat_index() == 0.0
    led.add_outdoor(OutdoorHeatSource.OTHER, 1.0)
    assert led.waste_heat_index() == float("inf")


def test_negative_energy_rejected():
    led = HeatIslandLedger()
    with pytest.raises(ValueError):
        led.add_outdoor(OutdoorHeatSource.AIRCON, -1.0)
    with pytest.raises(ValueError):
        led.add_useful_heat(-1.0)
    with pytest.raises(ValueError):
        led.add_useful_compute(-1.0)


def test_breakdown_kwh_skips_zero_sources():
    led = HeatIslandLedger()
    led.add_outdoor(OutdoorHeatSource.ERADIATOR_SUMMER, 3.6e6)  # 1 kWh
    bd = led.breakdown_kwh()
    assert bd == {"eradiator_summer": pytest.approx(1.0)}


def test_useful_heat_tracked_separately():
    led = HeatIslandLedger()
    led.add_useful_heat(500.0)
    assert led.useful_heat_j == 500.0
    assert led.total_outdoor_j == 0.0
