"""Tests for the metrics registry: counters, gauges, histograms, snapshots."""

import pytest

from repro.obs import MetricsRegistry


def test_counter_get_or_create_and_inc():
    reg = MetricsRegistry()
    c = reg.counter("requests_admitted", flow="edge")
    c.inc()
    c.inc(2.0)
    assert reg.counter("requests_admitted", flow="edge") is c
    assert c.value == 3.0
    with pytest.raises(ValueError):
        c.inc(-1)


def test_labels_distinguish_series():
    reg = MetricsRegistry()
    reg.counter("x", flow="edge").inc()
    reg.counter("x", flow="cloud").inc(5)
    reg.counter("x").inc(9)
    snap = reg.snapshot()
    assert snap["x{flow=edge}"] == 1
    assert snap["x{flow=cloud}"] == 5
    assert snap["x"] == 9
    assert len(reg) == 3


def test_label_order_does_not_matter():
    reg = MetricsRegistry()
    a = reg.counter("x", flow="edge", district=0)
    b = reg.counter("x", district=0, flow="edge")
    assert a is b


def test_gauge_set_and_inc():
    reg = MetricsRegistry()
    g = reg.gauge("free_cores", district=1)
    g.set(10)
    g.inc(-3)
    assert g.value == 7.0
    assert reg.snapshot()["free_cores{district=1}"] == 7.0


def test_histogram_snapshot_and_percentile():
    reg = MetricsRegistry()
    h = reg.histogram("service_time_s", flow="edge")
    for v in [1.0, 2.0, 3.0, 4.0, 5.0]:
        h.observe(v)
    assert h.count == 5
    assert h.percentile(50) == 3.0
    assert h.percentile(0) == 1.0
    assert h.percentile(100) == 5.0
    snap = h.snapshot()
    assert snap["count"] == 5
    assert snap["sum"] == 15.0
    assert snap["mean"] == 3.0
    assert snap["min"] == 1.0 and snap["max"] == 5.0
    assert snap["p50"] == 3.0


def test_histogram_empty_and_bad_q():
    reg = MetricsRegistry()
    h = reg.histogram("h")
    assert h.snapshot() == {"count": 0, "sum": 0.0}
    with pytest.raises(ValueError):
        h.percentile(50)
    h.observe(1.0)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_type_conflict_rejected():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_snapshot_diff():
    reg = MetricsRegistry()
    reg.counter("done", flow="edge").inc(3)
    reg.histogram("lat").observe(1.0)
    before = reg.snapshot()
    reg.counter("done", flow="edge").inc(2)
    reg.counter("new_series").inc()
    reg.histogram("lat").observe(3.0)
    after = reg.snapshot()
    d = MetricsRegistry.diff(before, after)
    assert d["done{flow=edge}"] == 2
    assert d["new_series"] == 1  # missing before counts from zero
    assert d["lat"] == {"count": 1, "sum": 3.0}


def test_clear():
    reg = MetricsRegistry()
    reg.counter("x").inc()
    reg.clear()
    assert len(reg) == 0
    assert reg.snapshot() == {}
