"""HTML run report: self-contained output, sections, CLI round trip."""

import xml.etree.ElementTree as ET
import re

import pytest

from repro.cli import main
from repro.obs import Observability, Tracer
from repro.obs.report import render_report, report_from_jsonl, write_report


class _Carrier:
    def __init__(self, request_id):
        self.request_id = request_id


def _story(obs, rid, t0, span, ok=True):
    c = _Carrier(rid)
    obs.emit_span("request", "edge.received", t0, ctx=c, id=rid)
    obs.emit_span("request", "edge.admitted", t0 + 0.1 * span, ctx=c, id=rid)
    obs.emit_span("request", "edge.scheduled", t0 + 0.3 * span, ctx=c, id=rid)
    obs.emit_span("request", "edge.completed", t0 + span, ctx=c,
                  dur=0.7 * span, id=rid, ok=ok, resp_s=span)


@pytest.fixture()
def records():
    tr = Tracer()
    obs = Observability(tracer=tr)
    for i in range(8):
        _story(obs, f"edge-{i}", 100.0 * i, 2.0 + i, ok=(i != 7))
    for k in range(6):
        ts = 700.0 * k
        tr.emit("sample", "comfort.sample", ts, in_band=0.9 + 0.01 * k,
                rooms=48)
        tr.emit("sample", "fleet.sample", ts, up=0.95, free_cores=10,
                total_cores=64,
                util={"district-0": 0.2 + 0.1 * k, "district-1": 0.5})
    return list(tr.iter_records())


def test_report_has_all_sections(records):
    html = render_report(records, title="unit report")
    assert html.lstrip().startswith("<!DOCTYPE html>")
    assert "unit report" in html
    for section in ("Service-level objectives", "Time series",
                    "Slowest requests", "Fleet utilisation"):
        assert section in html, f"missing section {section!r}"
    # SLO verdicts never rely on color alone
    assert "PASS" in html or "FAIL" in html


def test_report_is_self_contained(records):
    html = render_report(records, title="t")
    assert "<script" not in html
    assert not re.search(r"https?://", html)
    assert "@import" not in html and "url(" not in html


def test_report_svgs_are_well_formed(records):
    html = render_report(records, title="t")
    svgs = re.findall(r"<svg.*?</svg>", html, flags=re.S)
    assert len(svgs) >= 3                     # charts + waterfalls + heatmap
    for svg in svgs:
        ET.fromstring(svg)                    # raises on malformed XML
    # native tooltips present so hover works without JS
    assert "<title>" in html


def test_report_waterfalls_show_slowest_requests(records):
    html = render_report(records, title="t", slowest_n=2)
    assert "edge-7" in html and "edge-6" in html   # the two longest stories
    assert "edge-0" not in html
    assert "scheduled→completed" in html


def test_write_report_and_jsonl_round_trip(tmp_path, records):
    out = write_report(records, tmp_path / "r.html", title="t")
    assert out.read_text(encoding="utf-8") == render_report(records, title="t")

    tr = Tracer()
    tr.absorb(records)
    trace = tr.write_jsonl(tmp_path / "t.jsonl")
    out2 = report_from_jsonl(trace, tmp_path / "r2.html", title="t")
    assert out2.read_text(encoding="utf-8") == out.read_text(encoding="utf-8")


def test_empty_trace_still_renders(tmp_path):
    html = render_report([], title="empty")
    assert "<!DOCTYPE html>" in html and "empty" in html


def test_cli_report_subcommand(tmp_path, records, capsys):
    tr = Tracer()
    tr.absorb(records)
    trace = tr.write_jsonl(tmp_path / "t.jsonl")
    out = tmp_path / "report.html"
    assert main(["report", str(trace), "-o", str(out), "--title", "cli t",
                 "--slowest", "3"]) == 0
    assert "report →" in capsys.readouterr().out
    assert "cli t" in out.read_text(encoding="utf-8")


def test_cli_report_missing_trace_errors(tmp_path, capsys):
    assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
    assert "no such trace" in capsys.readouterr().err.lower()


# --------------------------------------------------------------------------- #
# orchestration-plane panels: surrogate error budget + worker Gantt
# --------------------------------------------------------------------------- #
def _surrogate_records():
    tr = Tracer()
    for k in range(5):
        tr.emit("surrogate", "surrogate.drift", 3600.0 * k,
                max_drift_c=0.05 * k, budget_c=0.35, aggregated=3, live=1)
    tr.emit("surrogate", "surrogate.materialize", 7200.0, district=2,
            reason="churn", live=2, aggregated=2)
    tr.emit("surrogate", "surrogate.zoom", 9000.0, district=1, zooms=1)
    return list(tr.iter_records())


def _run_report_payload():
    return {
        "experiment": "E14", "backend": "dag", "jobs": 2,
        "computed": 3, "cached": 0,
        "backend_stats": {
            "executed": 4, "chunks_dispatched": 4, "chunk_steals": 4,
            "queue_depth_peak": 2, "worker_deaths": 1, "retried_nodes": 1,
            "respawned_workers": 1, "duplicate_results": 0,
            "heartbeat_max_staleness_s": 0.31,
            "nodes_per_worker": {"0": 2, "1": 2},
            "last_heartbeat": {"0": 1.0, "1": 2.0},
            "timeline": [
                {"node": "prefix-a", "kind": "prefix", "worker": 0,
                 "attempts": 1, "enqueue_s": 0.0, "claim_s": 0.01,
                 "start_s": 0.02, "done_s": 0.5, "wall_s": 0.48},
                {"node": "pt-1", "kind": "point", "worker": 1, "attempts": 2,
                 "enqueue_s": 0.5, "claim_s": 0.55, "start_s": 0.6,
                 "done_s": 1.4, "wall_s": 0.8},
            ],
        },
    }


def test_surrogate_budget_panel_renders(records):
    html = render_report(records + _surrogate_records(), title="t")
    assert "Surrogate error budget" in html
    assert "worst drift" in html
    assert "0.200°C / 0.35°C budget" in html      # max over the drift series
    assert "materializations" in html and "zoom-ins" in html
    assert "error budget" in html                 # the 100% break line
    for svg in re.findall(r"<svg.*?</svg>", html, flags=re.S):
        ET.fromstring(svg)


def test_surrogate_panel_absent_without_records(records):
    assert "Surrogate error budget" not in render_report(records, title="t")


def test_gantt_panel_renders_from_run_report(records):
    html = render_report(records, title="t", run_report=_run_report_payload())
    assert "Orchestration" in html
    assert "Worker × node timeline" in html
    assert "nodes executed" in html and "chunk steals" in html
    assert "E14" in html and "backend dag" in html
    assert "pt-1" in html and "2 attempts" in html   # retried node flagged
    for svg in re.findall(r"<svg.*?</svg>", html, flags=re.S):
        ET.fromstring(svg)


def test_gantt_panel_absent_without_run_report(records):
    assert "Orchestration" not in render_report(records, title="t")
    # a run report with no backend stats contributes nothing either
    html = render_report(records, title="t",
                         run_report={"experiment": "E2",
                                     "backend_stats": None})
    assert "Worker × node timeline" not in html


def test_cli_report_with_run_report(tmp_path, records, capsys):
    import json

    tr = Tracer()
    tr.absorb(records + _surrogate_records())
    trace = tr.write_jsonl(tmp_path / "t.jsonl")
    rr = tmp_path / "run.json"
    rr.write_text(json.dumps(_run_report_payload()), encoding="utf-8")
    out = tmp_path / "report.html"
    assert main(["report", str(trace), "--run-report", str(rr),
                 "-o", str(out)]) == 0
    capsys.readouterr()
    html = out.read_text(encoding="utf-8")
    assert "Orchestration" in html
    assert "Surrogate error budget" in html


def test_cli_report_missing_run_report_errors(tmp_path, records, capsys):
    tr = Tracer()
    tr.absorb(records)
    trace = tr.write_jsonl(tmp_path / "t.jsonl")
    assert main(["report", str(trace),
                 "--run-report", str(tmp_path / "nope.json")]) == 2
    assert "run report" in capsys.readouterr().err.lower()
