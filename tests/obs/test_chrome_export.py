"""Chrome trace-event exporter: metadata threads, phases, time scaling."""

import json

from repro.obs import TraceRecord, Tracer, to_chrome_trace
from repro.obs.trace import write_chrome_trace


def _records():
    tr = Tracer()
    tr.emit("request", "edge.received", 1.5, id="edge-1")
    tr.emit("request", "edge.completed", 2.5, dur=0.25, id="edge-1")
    tr.emit("engine", "engine.dispatch", 3.0)
    return list(tr.iter_records())


def test_thread_metadata_one_per_kind_in_first_seen_order():
    doc = to_chrome_trace(_records())
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert [m["name"] for m in meta] == ["thread_name", "thread_name"]
    assert [(m["tid"], m["args"]["name"]) for m in meta] == [
        (1, "request"), (2, "engine")]
    assert all(m["pid"] == 1 for m in meta)
    # metadata precedes the first event of its thread
    names = [e.get("args", {}).get("name", e["name"])
             for e in doc["traceEvents"]]
    assert names.index("request") < names.index("edge.received")


def test_events_land_on_their_kind_thread():
    doc = to_chrome_trace(_records())
    by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] != "M"}
    assert by_name["edge.received"]["tid"] == 1
    assert by_name["edge.completed"]["tid"] == 1
    assert by_name["engine.dispatch"]["tid"] == 2
    assert by_name["edge.received"]["cat"] == "request"


def test_duration_vs_instant_phases():
    doc = to_chrome_trace(_records())
    by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] != "M"}
    dur_ev = by_name["edge.completed"]
    assert dur_ev["ph"] == "X" and "s" not in dur_ev
    inst = by_name["edge.received"]
    assert inst["ph"] == "i" and inst["s"] == "t" and "dur" not in inst


def test_microsecond_scaling():
    doc = to_chrome_trace(_records())
    by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] != "M"}
    assert by_name["edge.received"]["ts"] == 1.5e6
    assert by_name["edge.completed"]["dur"] == 0.25e6
    assert doc["displayTimeUnit"] == "ms"


def test_span_identity_rides_in_args_without_mutating_record():
    rec = TraceRecord(1.0, "request", "edge.scheduled", {"id": "edge-1"},
                      trace_id="edge-1", span_id="edge-1/2",
                      parent_id="edge-1/1")
    doc = to_chrome_trace([rec])
    (ev,) = [e for e in doc["traceEvents"] if e["ph"] != "M"]
    assert ev["args"]["trace_id"] == "edge-1"
    assert ev["args"]["span_id"] == "edge-1/2"
    assert ev["args"]["parent_id"] == "edge-1/1"
    assert "trace_id" not in rec.args         # exporter copied, didn't mutate


def test_spanless_records_keep_plain_args():
    rec = TraceRecord(1.0, "engine", "engine.dispatch", {"n": 3})
    doc = to_chrome_trace([rec])
    (ev,) = [e for e in doc["traceEvents"] if e["ph"] != "M"]
    assert ev["args"] == {"n": 3}
    assert "trace_id" not in ev["args"]


def test_write_chrome_trace_is_strict_json(tmp_path):
    path = write_chrome_trace(_records(), tmp_path / "t.json")
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == 5       # 2 metadata + 3 events
