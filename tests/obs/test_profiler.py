"""Tests for the profiler and its engine integration."""

import pytest

from repro.obs import Profiler, Tracer
from repro.sim.engine import Engine


def test_record_and_stats():
    p = Profiler()
    p.record("a", 0.2)
    p.record("a", 0.1)
    p.record("b", 0.5)
    assert p.total_calls == 3
    assert p.total_s == pytest.approx(0.8)
    stats = p.stats()
    assert list(stats) == ["b", "a"]  # hottest first
    assert stats["a"]["calls"] == 2
    assert stats["a"]["total_s"] == pytest.approx(0.3)
    assert stats["a"]["max_us"] == pytest.approx(0.2e6)


def test_report_renders_table():
    p = Profiler()
    p.record("process:df3-tick", 0.25)
    out = p.report()
    assert "profile" in out
    assert "process:df3-tick" in out
    assert "share" in out


def test_engine_attributes_labels_to_profiler():
    prof = Profiler()
    eng = Engine(profiler=prof)
    ticks = []
    eng.add_process("sampler", 10.0, lambda now, dt: ticks.append(now))
    eng.schedule(5.0, lambda: None, label="custom-event")
    eng.schedule(7.0, lambda: None)  # unlabelled: falls back to __qualname__
    eng.run_until(30.0)
    stats = prof.stats()
    assert "process:sampler" in stats
    assert stats["process:sampler"]["calls"] == 3
    assert "custom-event" in stats
    assert any("lambda" in label for label in stats)  # qualname fallback
    assert len(ticks) == 3


def test_engine_emits_dispatch_records_to_tracer():
    tr = Tracer()
    eng = Engine(tracer=tr)
    eng.schedule(1.0, lambda: None, label="x")
    eng.schedule(2.0, lambda: None, label="y")
    eng.run_until(10.0)
    assert tr.counts_by_kind() == {"engine": 2}
    labels = [r.args["label"] for r in tr.records]
    assert labels == ["x", "y"]
    assert [r.ts for r in tr.records] == [1.0, 2.0]


def test_engine_step_is_instrumented():
    prof = Profiler()
    eng = Engine(profiler=prof)
    eng.schedule(1.0, lambda: None, label="stepped")
    assert eng.step()
    assert "stepped" in prof.stats()


def test_uninstrumented_engine_has_no_hooks():
    eng = Engine()
    assert eng.tracer is None and eng.profiler is None
    eng.schedule(1.0, lambda: None)
    eng.run_until(2.0)
    assert eng.events_executed == 1
