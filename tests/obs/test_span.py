"""Span chains and the SpanIndex: allocation, linking, trees, critical paths."""

from dataclasses import dataclass, field

import pytest

from repro.obs import (
    Observability,
    SpanIndex,
    TraceRecord,
    Tracer,
    adopt_chain,
    link_spans,
    span_context,
)
from repro.obs.span import next_span


@dataclass
class Carrier:
    request_id: str = "edge-1"


# --------------------------------------------------------------------------- #
# span allocation
# --------------------------------------------------------------------------- #
def test_span_ids_chain_per_carrier():
    c = Carrier()
    ctx = span_context(c)
    assert (ctx["trace"], ctx["base"]) == ("edge-1", "edge-1")
    assert next_span(ctx) == ("edge-1/0", None)
    assert next_span(ctx) == ("edge-1/1", "edge-1/0")
    assert next_span(ctx) == ("edge-1/2", "edge-1/1")


def test_clone_suffix_shares_trace_id_but_not_span_base():
    clone = Carrier("edge-7#clone")
    ctx = span_context(clone)
    assert ctx["trace"] == "edge-7"       # the primary's story
    assert ctx["base"] == "edge-7#clone"  # but its own span namespace
    sid, parent = next_span(ctx)
    assert sid == "edge-7#clone/0" and parent is None


def test_link_spans_seeds_child_chain():
    primary, clone = Carrier("edge-1"), Carrier("edge-1#clone")
    next_span(span_context(primary))          # edge-1/0
    link_spans(clone, primary)
    sid, parent = next_span(span_context(clone))
    assert sid == "edge-1#clone/0"
    assert parent == "edge-1/0"               # hangs off the primary's tip


def test_adopt_chain_grafts_winner_tip():
    primary, clone = Carrier("edge-1"), Carrier("edge-1#clone")
    next_span(span_context(primary))              # edge-1/0
    link_spans(clone, primary)
    next_span(span_context(clone))                # edge-1#clone/0
    adopt_chain(primary, clone)
    sid, parent = next_span(span_context(primary))
    assert sid == "edge-1/1"
    assert parent == "edge-1#clone/0"             # completion blames the clone


def test_adopt_chain_is_noop_without_source_spans():
    primary, clone = Carrier("a"), Carrier("b")
    next_span(span_context(primary))
    adopt_chain(primary, clone)                   # clone never emitted
    _, parent = next_span(span_context(primary))
    assert parent == "a/0"                        # chain undisturbed


def test_emit_span_skips_filtered_kinds_without_allocating():
    tr = Tracer(kinds={"request"})
    obs = Observability(tracer=tr)
    c = Carrier()
    obs.emit_span("resilience", "edge.cloned", 1.0, ctx=c)  # filtered kind
    assert len(tr) == 0
    assert "_trace_ctx" not in c.__dict__   # no dangling chain state
    obs.emit_span("request", "edge.received", 2.0, ctx=c)
    assert tr.records[0].span_id == "edge-1/0"
    assert tr.records[0].parent_id is None  # filtered emit left no hole


# --------------------------------------------------------------------------- #
# SpanIndex
# --------------------------------------------------------------------------- #
def _emit_story(tr: Tracer, rid: str = "edge-1"):
    obs = Observability(tracer=tr)
    c = Carrier(rid)
    obs.emit_span("request", "edge.received", 0.0, ctx=c, id=rid)
    obs.emit_span("request", "edge.admitted", 0.1, ctx=c, id=rid)
    obs.emit_span("request", "edge.scheduled", 0.4, ctx=c, id=rid)
    obs.emit_span("request", "edge.completed", 1.4, ctx=c, dur=1.0, id=rid,
                  ok=True)
    return c


def test_index_builds_complete_tree():
    tr = Tracer()
    _emit_story(tr)
    idx = SpanIndex(tr.iter_records())
    assert idx.trace_ids() == ["edge-1"]
    assert idx.root("edge-1").name == "edge.received"
    assert idx.terminal("edge-1").name == "edge.completed"
    assert idx.is_complete("edge-1")
    assert idx.completeness("edge.") == (1, 1)


def test_critical_path_segments_and_breakdown():
    tr = Tracer()
    _emit_story(tr)
    idx = SpanIndex(tr.iter_records())
    segs = idx.critical_path("edge-1")
    assert [s.label for s in segs] == [
        "received→admitted", "admitted→scheduled", "scheduled→completed"]
    assert segs[0].dur == pytest.approx(0.1)
    assert sum(idx.breakdown("edge-1").values()) == pytest.approx(1.4)
    agg = idx.aggregate_breakdown("edge.")
    assert agg["scheduled→completed"] == pytest.approx(1.0)


def test_incomplete_when_root_evicted():
    tr = Tracer()
    _emit_story(tr)
    records = list(tr.iter_records())[1:]   # ring evicted the root
    idx = SpanIndex(records)
    assert not idx.is_complete("edge-1")
    assert idx.completeness("edge.") == (0, 1)


def test_records_without_spans_are_ignored():
    idx = SpanIndex([TraceRecord(0.0, "engine", "engine.dispatch", {})])
    assert idx.trace_ids() == []


def test_slowest_orders_by_end_to_end_duration():
    tr = Tracer()
    obs = Observability(tracer=tr)
    for rid, span in (("edge-a", 5.0), ("edge-b", 50.0), ("edge-c", 0.5)):
        c = Carrier(rid)
        obs.emit_span("request", "edge.received", 0.0, ctx=c)
        obs.emit_span("request", "edge.completed", span, ctx=c)
    idx = SpanIndex(tr.iter_records())
    assert idx.slowest(2) == ["edge-b", "edge-a"]


def test_path_to_root_is_cycle_safe():
    # hand-built malformed trace: span is its own ancestor
    recs = [
        TraceRecord(0.0, "request", "edge.received", {}, trace_id="t",
                    span_id="a", parent_id="b"),
        TraceRecord(1.0, "request", "edge.completed", {}, trace_id="t",
                    span_id="b", parent_id="a"),
    ]
    idx = SpanIndex(recs)
    chain = idx.path_to_root("b")
    assert len(chain) == 2          # visits each span once, terminates
    assert not idx.is_complete("t")
