"""End-to-end observability: a fully instrumented city produces all four
canonical record kinds, a non-empty metrics snapshot, and — crucially —
does not perturb the simulation it observes."""

import json

import pytest

from repro import obs as O
from repro.core.faults import FaultInjector
from repro.core.requests import CloudRequest, EdgeRequest
from repro.experiments import f3_three_flows
from repro.experiments.common import small_city
from repro.obs import to_chrome_trace
from repro.sim.calendar import DAY


def full_obs():
    return O.Observability(tracer=O.Tracer(), registry=O.MetricsRegistry(),
                           profiler=O.Profiler())


def run_city(obs=None):
    """A short mixed run with both compute flows and one fault."""
    mw = small_city(obs=obs, seed=3)
    faults = FaultInjector(mw)
    for i in range(20):
        mw.inject([EdgeRequest(cycles=2e9, time=60.0 * i,
                               source="district-0/building-0")])
        mw.inject([CloudRequest(cycles=5e9, time=90.0 * i)])
    victim = mw.clusters[0].workers[0].name
    mw.engine.schedule_at(600.0, lambda: faults.crash_server(victim))
    mw.engine.schedule_at(1800.0, lambda: faults.recover_server(victim))
    mw.run_until(0.5 * DAY)
    return mw


def test_all_four_record_kinds_present():
    obs = full_obs()
    run_city(obs=obs)
    kinds = obs.tracer.counts_by_kind()
    assert {"request", "regulator", "fault", "engine"} <= set(kinds)
    names = {r.name for r in obs.tracer.records}
    # request lifecycle
    assert {"edge.received", "edge.admitted", "edge.scheduled",
            "edge.completed", "cloud.admitted"} <= names
    # regulator actions and fault injections
    assert "regulator.heat_on" in names or "regulator.heat_off" in names
    assert {"fault.server_crash", "fault.server_recover"} <= names
    assert "engine.dispatch" in names


def test_metrics_snapshot_nonempty_and_consistent():
    obs = full_obs()
    mw = run_city(obs=obs)
    snap = obs.registry.snapshot()
    assert snap  # non-empty
    completed = sum(v for k, v in snap.items()
                    if k.startswith("requests_completed{") and "flow=edge" in k)
    assert completed == len(mw.completed_edge())
    assert snap["fault_events{type=server_crash}"] == 1
    hist = next(v for k, v in snap.items() if k.startswith("service_time_s"))
    assert hist["count"] > 0 and hist["p95"] >= hist["p50"]


def test_profiler_sees_middleware_tick():
    obs = full_obs()
    run_city(obs=obs)
    assert "process:df3-tick" in obs.profiler.stats()
    assert obs.profiler.total_calls > 0


def test_instrumentation_does_not_perturb_results():
    plain = run_city()
    instrumented = run_city(obs=full_obs())
    assert len(plain.completed_edge()) == len(instrumented.completed_edge())
    assert [r.completed_at for r in plain.completed_edge()] == \
        [r.completed_at for r in instrumented.completed_edge()]
    assert plain.fleet_energy_j() == instrumented.fleet_energy_j()
    assert plain.engine.events_executed == instrumented.engine.events_executed


def test_experiment_data_identical_with_and_without_obs():
    r_plain = f3_three_flows.run(duration_days=0.1, seed=11)
    with O.obs_session(full_obs()) as obs:
        r_obs = f3_three_flows.run(duration_days=0.1, seed=11)
    assert r_plain.data == r_obs.data
    assert r_plain.text == r_obs.text
    assert len(obs.tracer) > 0  # but the trace did observe the run


def test_obs_session_restores_previous_bundle():
    before = O.get_obs()
    with O.obs_session(full_obs()) as obs:
        assert O.get_obs() is obs
    assert O.get_obs() is before
    with pytest.raises(RuntimeError):  # restored on exceptions too
        with O.obs_session(full_obs()):
            raise RuntimeError("boom")
    assert O.get_obs() is before


def test_real_run_chrome_trace_is_schema_valid(tmp_path):
    obs = full_obs()
    run_city(obs=obs)
    path = obs.tracer.write_chrome_trace(tmp_path / "c.json")
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    assert len(events) > 100
    for ev in events:
        assert ev["ph"] in ("X", "i", "M")
        if ev["ph"] == "M":
            assert ev["name"] == "thread_name"
        else:
            assert "ts" in ev and "pid" in ev and "tid" in ev
    # spans exist (completed requests carry their service time)
    assert any(ev["ph"] == "X" for ev in events)
    # validated against a re-parse of the chrome exporter, not by hand
    assert to_chrome_trace(obs.tracer.records)["traceEvents"][0] == events[0]
