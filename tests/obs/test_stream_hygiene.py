"""Streaming hygiene: non-destructive tails, snapshot-under-mutation safety.

The service layer reads tracer tails and metrics snapshots from IO threads
while the engine thread keeps emitting.  These are the regression tests for
the two crashes that makes possible: deque/dict mutation during iteration
(``RuntimeError``) and inconsistent histogram reductions.
"""

import threading
import time

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import JsonlTracer, RingTracer, Tracer


def _emit(tr, i) -> None:
    tr.emit("request", f"r{i}", float(i))


# ---------------------------------------------------------------------- #
# tail() is non-destructive on every tracer flavour
# ---------------------------------------------------------------------- #
def test_tracer_tail_returns_last_n_without_consuming():
    tr = Tracer()
    for i in range(10):
        _emit(tr, i)
    tail = tr.tail(3)
    assert [r.ts for r in tail] == [7.0, 8.0, 9.0]
    assert len(tr) == 10            # nothing consumed
    assert tr.tail(0) == [] and tr.tail(-1) == []
    assert [r.ts for r in tr.tail(99)] == [float(i) for i in range(10)]


def test_ring_tracer_tail_respects_eviction():
    tr = RingTracer(capacity=4)
    for i in range(10):
        _emit(tr, i)
    assert [r.ts for r in tr.tail(99)] == [6.0, 7.0, 8.0, 9.0]
    assert tr.total_emitted == 10 and len(tr) == 4


def test_jsonl_tracer_tail_never_touches_disk(tmp_path):
    path = tmp_path / "t.jsonl"
    tr = JsonlTracer(path, buffer_records=4)
    for i in range(10):
        _emit(tr, i)
    before = path.read_bytes() if path.exists() else b""
    tail = tr.tail(2)
    assert [r.ts for r in tail] == [8.0, 9.0]
    after = path.read_bytes() if path.exists() else b""
    assert before == after          # tail is read-only: no flush, no reread


def test_ring_tracer_tail_while_another_thread_emits():
    """The deque-mutation crash: iterating a deque while a writer appends
    raises RuntimeError without the tracer's internal lock."""
    tr = RingTracer(capacity=256)
    stop = threading.Event()
    errors = []

    def writer():
        i = 0
        while not stop.is_set():
            _emit(tr, i)
            i += 1

    def reader():
        deadline = time.monotonic() + 1.5
        try:
            while time.monotonic() < deadline:
                tail = tr.tail(64)
                assert len(tail) <= 64
                list(tr.iter_records())
        except RuntimeError as exc:  # pragma: no cover - the regression
            errors.append(exc)

    w = threading.Thread(target=writer)
    r = threading.Thread(target=reader)
    w.start(); r.start()
    r.join(timeout=60)
    stop.set()
    w.join(timeout=10)
    assert not errors, f"concurrent tail raised: {errors[:1]}"


# ---------------------------------------------------------------------- #
# metrics snapshots under concurrent mutation
# ---------------------------------------------------------------------- #
def test_registry_snapshot_while_another_thread_registers():
    """The dict-mutation crash: snapshotting while new series register."""
    reg = MetricsRegistry()
    stop = threading.Event()
    errors = []

    def writer():
        i = 0
        while not stop.is_set():
            # fresh label sets keep the series *dict* growing (the hazard
            # under test); modulo keeps histogram sizes bounded so snapshot
            # sorting stays cheap
            reg.counter("reqs", shard=i % 997).inc()
            reg.histogram("lat", shard=i % 89).observe(float(i % 1000))
            i += 1

    def reader():
        deadline = time.monotonic() + 1.5
        try:
            while time.monotonic() < deadline:
                snap = reg.snapshot()
                for value in snap.values():
                    if isinstance(value, dict) and value["count"]:
                        # one atomic copy: count, sum and percentiles all
                        # describe the same observation set
                        assert value["count"] >= 1
                        assert value["min"] <= value["mean"] <= value["max"]
        except RuntimeError as exc:  # pragma: no cover - the regression
            errors.append(exc)

    w = threading.Thread(target=writer)
    r = threading.Thread(target=reader)
    w.start(); r.start()
    r.join(timeout=60)
    stop.set()
    w.join(timeout=10)
    assert not errors, f"concurrent snapshot raised: {errors[:1]}"


def test_histogram_snapshot_is_internally_consistent_mid_stream():
    reg = MetricsRegistry()
    h = reg.histogram("lat")
    for i in range(100):
        h.observe(float(i))
    snap = h.snapshot()
    assert snap["count"] == 100
    assert snap["sum"] == sum(float(i) for i in range(100))  # emit-order sum
    assert snap["min"] == 0.0 and snap["max"] == 99.0
    assert snap["p50"] == 49.5


def test_merge_while_source_still_registers():
    src = MetricsRegistry()
    for i in range(50):
        src.counter("c", k=i).inc(i)
    stop = threading.Event()

    def writer():
        i = 50
        while not stop.is_set():
            src.counter("c", k=i % 5000).inc()   # bounded series count
            i += 1

    w = threading.Thread(target=writer)
    w.start()
    try:
        dst = MetricsRegistry()
        for _ in range(20):
            dst.clear()
            dst.merge(src)          # must not raise dict-changed-size
        assert len(dst) >= 50
    finally:
        stop.set()
        w.join(timeout=10)
