"""End-to-end causality: a traced F3 run reconstructs a complete span tree
for (essentially all, and at least 99% of) completed requests, the SLO
verdicts match the experiment's own table, and the same holds under A6
churn where stories weave through retries, clones and salvage."""

import re

import pytest

from repro.obs import Observability, SpanIndex, Tracer, obs_session
from repro.obs.report import render_report
from repro.obs.slo import SLOEngine


@pytest.fixture(scope="module")
def traced_f3():
    """One fully traced paper-scale F3 run: (records, ExperimentResult)."""
    from repro.experiments import f3_three_flows

    tracer = Tracer()
    with obs_session(Observability(tracer=tracer)):
        result = f3_three_flows.run()
    return list(tracer.iter_records()), result


def test_f3_edge_span_trees_complete(traced_f3):
    records, result = traced_f3
    idx = SpanIndex(records)
    complete, total = idx.completeness("edge.")
    assert total >= result.data["edge_completed"]     # every completion traced
    assert complete / total >= 0.99                   # the acceptance bar
    complete_c, total_c = idx.completeness("cloud.")
    assert total_c == result.data["cloud_submitted"]
    assert complete_c == total_c


def test_f3_every_completion_reachable_from_admit(traced_f3):
    records, _ = traced_f3
    idx = SpanIndex(records)
    checked = 0
    for tid in idx.trace_ids():
        term = idx.terminal(tid)
        if term is None or not term.name.endswith(".completed"):
            continue
        chain = idx.path_to_root(term.span_id)
        names = [r.name for r in chain]
        assert chain[0].parent_id is None, f"{tid}: root has a parent"
        assert any(n.endswith(".received") or n.endswith(".admitted")
                   for n in names), f"{tid}: no admit in {names}"
        checked += 1
    assert checked > 1000  # a real run, not a vacuous pass


def test_f3_critical_path_accounts_for_latency(traced_f3):
    records, _ = traced_f3
    idx = SpanIndex(records)
    # the slowest story's segments tile root→terminal exactly
    tid = idx.slowest(1)[0]
    segs = idx.critical_path(tid)
    assert segs
    chain_span = segs[-1].end_ts - segs[0].start_ts
    assert sum(s.dur for s in segs) == pytest.approx(chain_span)
    # fleet-wide, execution time is a named, non-trivial bucket
    agg = idx.aggregate_breakdown("edge.")
    assert agg.get("scheduled→completed", 0.0) > 0.0


def test_f3_slo_verdicts_match_experiment_table(traced_f3):
    records, result = traced_f3
    report = SLOEngine().evaluate(records)
    by_name = {r.spec.name: r for r in report}
    d = result.data

    edge = by_name["edge-deadline"]
    assert edge.compliance == pytest.approx(1.0 - d["edge_miss_rate"], abs=1e-12)
    assert edge.samples == d["edge_submitted"]

    comfort = by_name["comfort-band"]
    assert comfort.compliance == pytest.approx(d["comfort_in_band"], abs=1e-12)

    cloud = by_name["cloud-completion"]
    assert cloud.compliance == 1.0
    assert cloud.samples == d["cloud_submitted"] == d["cloud_completed"]

    # the F3 table passes its own paper claims
    assert report.ok
    rendered = report.render()
    assert rendered.count("PASS") == len(report.results)


def test_f3_report_shows_matching_verdicts(traced_f3):
    records, result = traced_f3
    html = render_report(records, title="F3")
    for name in ("edge-deadline", "cloud-completion", "comfort-band",
                 "fleet-availability"):
        assert name in html
    # per-flow verdict text matches the SLO engine, not just colour
    assert html.count("PASS") >= 4 and "FAIL" not in html
    # the observed edge compliance (to report precision) appears in the panel
    pct = f"{1.0 - result.data['edge_miss_rate']:.2%}"
    assert pct in html
    # causal completeness is surfaced as a stat
    m = re.search(r"(\d+\.?\d*)% of edge stories causally complete", html)
    assert m and float(m.group(1)) >= 99.0


@pytest.mark.slow
def test_a6_churn_cell_spans_complete_through_resilience():
    """Retried/cloned/salvaged requests under churn still form full trees."""
    from repro.experiments.a6_churn import BUNDLES, MTBF_LEVELS_S, _run_cell

    tracer = Tracer()
    with obs_session(Observability(tracer=tracer)):
        cell = _run_cell(seed=101, mtbf_s=MTBF_LEVELS_S["mtbf=2h"],
                         recovery=BUNDLES["all"])
    # the run actually exercised the resilience paths
    assert cell["clones"] > 0 and cell["salvaged"] > 0

    idx = SpanIndex(tracer.iter_records())
    complete, total = idx.completeness("edge.")
    assert total > 1000
    assert complete / total >= 0.99
    complete_c, total_c = idx.completeness("cloud.")
    assert total_c > 0 and complete_c == total_c

    # clone stories exist and are grafted into their primary's tree
    names = {r.name for r in idx.spans.values()}
    assert "edge.cloned" in names
    cloned = [r for r in idx.spans.values() if r.name == "edge.cloned"]
    grafted = [r for r in cloned if idx.children.get(r.span_id)]
    assert grafted, "no clone span ever became a parent"
