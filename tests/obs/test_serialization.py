"""Stable JSON serialisation: SLO tables and span summaries round-trip.

The service's REST endpoints hand these dicts to arbitrary clients, so the
shapes are contracts: JSON-native values only, and ``from_dict(to_dict(x))``
reconstructs the object exactly.
"""

import json
import math

from repro.obs.slo import (
    SLOEngine,
    SLOReport,
    SLOResult,
    SLOSpec,
    SLOWindow,
    default_slos,
)
from repro.obs.span import SpanIndex
from repro.obs.trace import TraceRecord


def _edge_story(trace_id: str, t: float, slow: bool = False):
    """One complete edge request story: received → scheduled → completed."""
    dur = 8.0 if slow else 0.5
    return [
        TraceRecord(ts=t, kind="request", name="edge.received",
                    trace_id=trace_id, span_id=f"{trace_id}-a"),
        TraceRecord(ts=t + 0.1, kind="request", name="edge.scheduled",
                    trace_id=trace_id, span_id=f"{trace_id}-b",
                    parent_id=f"{trace_id}-a"),
        TraceRecord(ts=t + dur, kind="request", name="edge.completed",
                    dur=dur, trace_id=trace_id, span_id=f"{trace_id}-c",
                    parent_id=f"{trace_id}-b",
                    args={"deadline_met": not slow}),
    ]


# ---------------------------------------------------------------------- #
# SLO objects
# ---------------------------------------------------------------------- #
def test_slo_spec_round_trip():
    for spec in default_slos():
        d = spec.to_dict()
        json.loads(json.dumps(d, sort_keys=True))
        assert SLOSpec.from_dict(d) == spec


def test_slo_window_round_trip():
    w = SLOWindow(start_ts=0.0, end_ts=3600.0, compliance=0.875,
                  burn_rate=1.25, samples=8)
    d = w.to_dict()
    assert d["breached"] is True        # derived, exported for clients
    assert SLOWindow.from_dict(d) == w
    assert SLOWindow.from_dict(json.loads(json.dumps(d))) == w


def test_slo_result_and_report_round_trip():
    records = []
    for i in range(40):
        records.extend(_edge_story(f"e{i}", 100.0 * i, slow=(i % 5 == 0)))
    report = SLOEngine().evaluate(records)
    d = report.to_dict()
    blob = json.dumps(d, sort_keys=True)            # JSON-native throughout
    rebuilt = SLOReport.from_dict(json.loads(blob))
    assert rebuilt.ok == report.ok
    assert len(rebuilt.results) == len(report.results)
    for mine, theirs in zip(rebuilt.results, report.results):
        assert mine.spec == theirs.spec
        assert mine.samples == theirs.samples
        assert mine.windows == theirs.windows
        # nan-compliance (no data) survives the trip as nan
        if math.isnan(theirs.compliance):
            assert math.isnan(mine.compliance)
        else:
            assert mine.compliance == theirs.compliance
    # a second round trip is the identity: the format is stable
    assert json.dumps(rebuilt.to_dict(), sort_keys=True) == blob


def test_slo_result_dict_keeps_legacy_flat_fields():
    records = []
    for i in range(10):
        records.extend(_edge_story(f"e{i}", 50.0 * i))
    row = SLOEngine().evaluate(records).to_dict()["slos"][0]
    # pre-service consumers read these flat keys; they must not disappear
    for key in ("name", "flow", "target", "compliance", "ok", "windows"):
        assert key in row
    assert row["spec"]["name"] == row["name"]


# ---------------------------------------------------------------------- #
# span summaries
# ---------------------------------------------------------------------- #
def _index():
    records = []
    for i in range(6):
        records.extend(_edge_story(f"t{i}", 10.0 * i, slow=(i == 3)))
    # an orphan: parent span never captured (ring eviction)
    records.append(TraceRecord(ts=99.0, kind="request", name="edge.completed",
                               dur=0.2, trace_id="t-orphan",
                               span_id="o-1", parent_id="evicted"))
    return SpanIndex(records)


def test_span_index_to_dict_shape_and_json():
    idx = _index()
    d = idx.to_dict(prefix="edge.", slowest_n=2)
    json.loads(json.dumps(d, sort_keys=True))
    assert d["traces"] == 7 and d["spans"] == 19
    assert d["completeness"]["total"] == 7
    assert d["completeness"]["complete"] == 6     # the orphan is incomplete
    assert set(d["aggregate_breakdown"]) >= {"received→scheduled"}
    assert len(d["slowest"]) == 2
    worst = d["slowest"][0]
    assert worst["trace_id"] == "t3" and worst["outcome"] == "edge.completed"
    assert worst["critical_path"][-1]["label"].endswith("completed")
    assert worst["total_s"] > 0


def test_span_tree_dict_nests_children_and_flags_orphans():
    idx = _index()
    tree = idx.tree_dict("t0")
    assert tree["complete"] and tree["outcome"] == "edge.completed"
    assert len(tree["roots"]) == 1 and tree["orphans"] == []
    root = tree["roots"][0]
    assert root["name"] == "edge.received"
    assert root["children"][0]["name"] == "edge.scheduled"
    assert root["children"][0]["children"][0]["name"] == "edge.completed"
    assert root["children"][0]["children"][0]["dur"] == 0.5

    orphaned = idx.tree_dict("t-orphan")
    assert orphaned["roots"] == []
    assert [n["name"] for n in orphaned["orphans"]] == ["edge.completed"]
    assert not orphaned["complete"]

    assert idx.tree_dict("no-such-trace") is None


def test_critical_path_dict_matches_segments():
    idx = _index()
    rows = idx.critical_path_dict("t1")
    segs = idx.critical_path("t1")
    assert [r["label"] for r in rows] == [s.label for s in segs]
    assert all(r["dur"] == s.dur for r, s in zip(rows, segs))
    json.loads(json.dumps(rows))
