"""SLO engine: spec validation, window mechanics, burn rates, verdicts."""

import math

import pytest

from repro.obs import TraceRecord, Tracer
from repro.obs.slo import DEFAULT_SLOS, SLOEngine, SLOSpec, default_slos


def _rec(name, ts, **args):
    return TraceRecord(ts, "request", name, args)


EDGE = SLOSpec(name="edge", flow="edge", description="d", target=0.8,
               window_s=10.0, kind="event_ratio",
               good={"edge.completed": "ok"},
               bad=("edge.expired", "edge.rejected"))


# --------------------------------------------------------------------------- #
# spec validation + observation extraction
# --------------------------------------------------------------------------- #
def test_spec_rejects_bad_inputs():
    with pytest.raises(ValueError):
        SLOSpec(name="x", flow="f", description="d", target=1.5)
    with pytest.raises(ValueError):
        SLOSpec(name="x", flow="f", description="d", target=0.5, kind="nope")
    with pytest.raises(ValueError):
        SLOSpec(name="x", flow="f", description="d", target=0.5, window_s=0.0)
    with pytest.raises(ValueError):
        SLOEngine([EDGE, EDGE])  # duplicate names


def test_event_ratio_observation():
    assert EDGE.observe(_rec("edge.completed", 1.0, ok=True)) == 1.0
    assert EDGE.observe(_rec("edge.completed", 1.0, ok=False)) == 0.0
    assert EDGE.observe(_rec("edge.expired", 1.0)) == 0.0
    assert EDGE.observe(_rec("edge.rejected", 1.0)) == 0.0
    assert EDGE.observe(_rec("edge.received", 1.0)) is None
    assert EDGE.observe(_rec("edge.completed", 1.0)) is None  # no ok arg


def test_sample_mean_observation_uses_float_value():
    spec = SLOSpec(name="c", flow="heating", description="d", target=0.9,
                   kind="sample_mean", good={"comfort.sample": "in_band"})
    assert spec.observe(_rec("comfort.sample", 0.0, in_band=0.97)) == 0.97


def test_burn_rate_definition():
    assert EDGE.burn_rate(1.0) == 0.0
    assert EDGE.burn_rate(0.8) == pytest.approx(1.0)   # exactly on budget
    assert EDGE.burn_rate(0.6) == pytest.approx(2.0)   # 2x over
    tight = SLOSpec(name="t", flow="f", description="d", target=1.0,
                    kind="event_ratio", good={"x": None})
    assert tight.burn_rate(1.0) == 0.0
    assert math.isinf(tight.burn_rate(0.99))           # zero budget


# --------------------------------------------------------------------------- #
# evaluation: windows, verdicts, completion kind
# --------------------------------------------------------------------------- #
def test_rolling_windows_and_breach():
    recs = (
        [_rec("edge.completed", t, ok=True) for t in (1.0, 2.0, 3.0, 4.0)]
        # second window: 1 ok, 3 bad -> 25% < 80% target: breached
        + [_rec("edge.completed", 11.0, ok=True)]
        + [_rec("edge.expired", t) for t in (12.0, 13.0, 14.0)]
    )
    report = SLOEngine([EDGE]).evaluate(recs)
    (res,) = list(report)
    assert len(res.windows) == 2
    w0, w1 = res.windows
    assert (w0.start_ts, w0.end_ts, w0.compliance) == (0.0, 10.0, 1.0)
    assert not w0.breached
    assert w1.compliance == pytest.approx(0.25)
    assert w1.breached and w1.burn_rate == pytest.approx(0.75 / 0.2)
    assert res.breaches == 1
    assert res.compliance == pytest.approx(5 / 8)
    assert not res.ok and not report.ok


def test_breach_records_emitted_into_tracer():
    recs = [_rec("edge.expired", t) for t in (1.0, 2.0)]
    tr = Tracer()
    SLOEngine([EDGE]).evaluate(recs, tracer=tr)
    names = [r.name for r in tr.records]
    assert names == ["slo.burn_rate", "slo.breach"]
    breach = tr.records[1]
    assert breach.kind == "slo"
    assert breach.ts == 10.0                     # window end, simulated time
    assert breach.args["slo"] == "edge"
    assert breach.args["compliance"] == 0.0


def test_completion_kind_is_terminal():
    spec = SLOSpec(name="cloud", flow="cloud", description="d", target=1.0,
                   kind="completion", good={"cloud.completed": None},
                   bad=("cloud.received",))
    recs = ([_rec("cloud.received", t) for t in (0.0, 1.0, 2.0)]
            + [_rec("cloud.completed", t) for t in (5.0, 6.0, 7.0)])
    (res,) = list(SLOEngine([spec]).evaluate(recs))
    assert res.compliance == 1.0 and res.ok
    assert res.windows == []                     # whole-run objective
    # one lost job fails the 100% target
    (res2,) = list(SLOEngine([spec]).evaluate(recs[:-1]))
    assert res2.compliance == pytest.approx(2 / 3)
    assert not res2.ok


def test_no_data_is_vacuously_ok():
    (res,) = list(SLOEngine([EDGE]).evaluate([]))
    assert res.samples == 0 and res.ok
    assert math.isnan(res.compliance)


def test_render_and_to_dict():
    recs = [_rec("edge.completed", 1.0, ok=True)]
    report = SLOEngine([EDGE]).evaluate(recs)
    text = report.render()
    assert "edge" in text and "PASS" in text and "100.00%" in text
    d = report.to_dict()
    assert d["ok"] is True
    assert d["slos"][0]["windows"][0]["compliance"] == 1.0


def test_default_slos_cover_paper_claims():
    names = {s.name for s in DEFAULT_SLOS}
    assert names == {"edge-deadline", "cloud-completion", "comfort-band",
                     "fleet-availability"}
    # fresh copies every call: engines can't contaminate each other
    assert default_slos() is not default_slos()
    edge = next(s for s in DEFAULT_SLOS if s.name == "edge-deadline")
    assert edge.target == 0.90        # miss <= 10% (F3 observes 6.2%)
    cloud = next(s for s in DEFAULT_SLOS if s.name == "cloud-completion")
    assert cloud.target == 1.0 and cloud.kind == "completion"
