"""Tests for the tracer: records, JSONL round-trip, Chrome trace schema."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    TraceRecord,
    Tracer,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
)


def test_emit_collects_typed_records():
    tr = Tracer()
    tr.emit("request", "edge.admitted", 1.5, id="edge-0", cluster="district-0")
    tr.emit("request", "edge.completed", 2.5, dur=1.0, id="edge-0")
    tr.emit("engine", "engine.dispatch", 2.5, label="inject:edge")
    assert len(tr) == 3
    assert tr.counts_by_kind() == {"request": 2, "engine": 1}
    first = tr.records[0]
    assert first.ts == 1.5
    assert first.kind == "request"
    assert first.args["id"] == "edge-0"
    assert first.dur is None
    assert tr.records[1].dur == 1.0


def test_clear():
    tr = Tracer()
    tr.emit("engine", "x", 0.0)
    tr.clear()
    assert len(tr) == 0


def test_null_tracer_is_inert():
    null = NullTracer()
    assert not null.enabled
    null.emit("request", "edge.admitted", 1.0, id="r")
    assert len(null) == 0
    assert not NULL_TRACER.enabled
    assert Tracer.enabled  # the real one is on


def test_jsonl_roundtrip(tmp_path):
    tr = Tracer()
    tr.emit("regulator", "regulator.heat_on", 10.0, room="b/room-0",
            power_fraction=0.4)
    tr.emit("fault", "fault.server_crash", 20.0, server="q-1", tasks_killed=2)
    path = tr.write_jsonl(tmp_path / "t.jsonl")
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    for line in lines:
        json.loads(line)  # every line is standalone JSON
    back = read_jsonl(path)
    assert back == tr.records


def test_record_dict_roundtrip():
    rec = TraceRecord(3.0, "request", "cloud.scheduled",
                      {"id": "cloud-1", "worker": "q-2"}, dur=None)
    assert TraceRecord.from_dict(rec.to_dict()) == rec


# --------------------------------------------------------------------------- #
# Chrome trace-event format (the chrome://tracing / Perfetto schema)
# --------------------------------------------------------------------------- #
def chrome_fixture():
    tr = Tracer()
    tr.emit("request", "edge.admitted", 1.0, id="edge-0")
    tr.emit("request", "edge.completed", 3.0, dur=2.0, id="edge-0")
    tr.emit("engine", "engine.dispatch", 3.0, label="x")
    return tr


def test_chrome_trace_schema():
    doc = to_chrome_trace(chrome_fixture().records)
    assert isinstance(doc["traceEvents"], list)
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    data = [e for e in events if e["ph"] != "M"]
    # one thread-name metadata event per kind
    assert {m["args"]["name"] for m in meta} == {"request", "engine"}
    for ev in data:
        assert ev["ph"] in ("X", "i")
        assert isinstance(ev["name"], str) and ev["name"]
        assert isinstance(ev["ts"], (int, float))
        assert isinstance(ev["pid"], int)
        assert isinstance(ev["tid"], int)
        if ev["ph"] == "X":
            assert "dur" in ev and ev["dur"] >= 0
        else:
            assert ev["s"] in ("t", "p", "g")
    # timestamps are microseconds of simulated time
    assert data[0]["ts"] == pytest.approx(1.0e6)
    span = next(e for e in data if e["ph"] == "X")
    assert span["dur"] == pytest.approx(2.0e6)


def test_chrome_trace_file_is_valid_json(tmp_path):
    path = write_chrome_trace(chrome_fixture().records, tmp_path / "c.json")
    doc = json.loads(path.read_text())
    assert {"traceEvents", "displayTimeUnit"} <= set(doc)


def test_chrome_trace_groups_kinds_on_stable_tids():
    events = to_chrome_trace(chrome_fixture().records)["traceEvents"]
    tid_of = {e["args"]["name"]: e["tid"] for e in events if e["ph"] == "M"}
    for ev in events:
        if ev["ph"] != "M":
            assert ev["tid"] == tid_of[ev["cat"]]
