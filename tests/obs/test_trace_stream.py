"""Bounded trace collection: streaming spill, flight recorder, kind filters,
numpy sanitisation, dur coercion (round-trip property)."""

import json

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import (
    JsonlTracer,
    Observability,
    RingTracer,
    TraceRecord,
    Tracer,
    obs_session,
    read_jsonl,
)


# --------------------------------------------------------------------------- #
# satellite (a): dur coercion round-trip
# --------------------------------------------------------------------------- #
def test_from_dict_coerces_dur_to_float():
    rec = TraceRecord.from_dict(
        {"ts": 1, "kind": "request", "name": "x", "dur": 2})
    assert isinstance(rec.dur, float) and rec.dur == 2.0
    assert isinstance(rec.ts, float)
    assert TraceRecord.from_dict({"ts": 1.0, "kind": "k", "name": "n"}).dur is None


@given(st.one_of(st.none(),
                 st.integers(min_value=0, max_value=10**9),
                 st.floats(min_value=0.0, allow_nan=False,
                           allow_infinity=False)),
       st.floats(allow_nan=False, allow_infinity=False))
def test_record_json_roundtrip_property(dur, ts):
    rec = TraceRecord(ts, "request", "edge.completed", {"id": "r"},
                      dur=None if dur is None else float(dur),
                      trace_id="t", span_id="t/0", parent_id=None)
    back = TraceRecord.from_dict(json.loads(json.dumps(rec.to_dict())))
    assert back == rec
    assert back.dur is None or isinstance(back.dur, float)


# --------------------------------------------------------------------------- #
# satellite (b): numpy scalars sanitised at emit time, strict export
# --------------------------------------------------------------------------- #
def test_numpy_args_sanitised_at_emit(tmp_path):
    tr = Tracer()
    tr.emit("sample", "fleet.sample", np.float64(1.5),
            up=np.float64(0.93), n=np.int64(16),
            arr=np.array([1.0, 2.0]), nested={"f": np.float32(0.5)},
            dur=np.float64(0.25))
    r = tr.records[0]
    assert type(r.ts) is float and type(r.dur) is float
    assert type(r.args["up"]) is float and type(r.args["n"]) is int
    assert r.args["arr"] == [1.0, 2.0]
    assert type(r.args["nested"]["f"]) is float
    # strict json (no default=str): would raise if anything survived
    path = tr.write_jsonl(tmp_path / "t.jsonl")
    assert read_jsonl(path)[0].args["up"] == pytest.approx(0.93)


def test_unserialisable_arg_raises_not_stringifies(tmp_path):
    tr = Tracer()
    tr.emit("x", "y", 0.0, obj=object())
    with pytest.raises(TypeError):
        tr.write_jsonl(tmp_path / "t.jsonl")


# --------------------------------------------------------------------------- #
# kind filter
# --------------------------------------------------------------------------- #
def test_kind_filter_drops_at_emit():
    tr = Tracer(kinds={"request", "slo"})
    tr.emit("request", "edge.received", 0.0)
    tr.emit("engine", "engine.dispatch", 0.0)
    tr.emit("sample", "fleet.sample", 0.0)
    assert [r.kind for r in tr.records] == ["request"]
    assert tr.wants("slo") and not tr.wants("engine")


def test_absorb_refilters_and_counts():
    src = Tracer()
    src.emit("request", "edge.received", 0.0)
    src.emit("engine", "engine.dispatch", 0.0)
    dst = Tracer(kinds={"request"})
    assert dst.absorb(src.records) == 1
    assert [r.kind for r in dst.records] == ["request"]


# --------------------------------------------------------------------------- #
# streaming spill
# --------------------------------------------------------------------------- #
def test_jsonl_tracer_spills_and_replays(tmp_path):
    path = tmp_path / "s.jsonl"
    tr = JsonlTracer(path, buffer_records=8)
    for i in range(50):
        tr.emit("request", "edge.received", float(i), id=f"edge-{i}")
    assert tr.spilled >= 48                 # several spills happened
    assert len(tr.records) < 8              # buffer never exceeds the cap
    assert len(tr) == 50
    assert tr.peak_buffered <= 8
    back = list(tr.iter_records())
    assert len(back) == 50
    assert back[0].args["id"] == "edge-0" and back[-1].args["id"] == "edge-49"
    assert tr.counts_by_kind() == {"request": 50}


def test_jsonl_tracer_write_to_same_path_is_flush(tmp_path):
    path = tmp_path / "s.jsonl"
    tr = JsonlTracer(path, buffer_records=4)
    for i in range(6):
        tr.emit("request", "x", float(i))
    out = tr.write_jsonl(path)
    assert out == path and len(read_jsonl(path)) == 6
    other = tr.write_jsonl(tmp_path / "copy.jsonl")
    assert read_jsonl(other) == read_jsonl(path)


def test_jsonl_tracer_truncates_stale_file(tmp_path):
    path = tmp_path / "s.jsonl"
    path.write_text('{"ts": 0, "kind": "stale", "name": "old"}\n')
    tr = JsonlTracer(path)
    tr.flush()
    assert path.read_text() == ""


def test_streaming_peak_memory_is_bounded_on_instrumented_city():
    """The acceptance property at unit scale: a full instrumented city run
    holds at most ``buffer_records`` records in memory (the 16x-fleet
    version is the slow-marked test below)."""
    from repro.experiments.common import small_city
    from repro.core.requests import EdgeRequest
    from repro.sim.calendar import DAY

    tr = JsonlTracer("/dev/null", buffer_records=256)
    tr.path = None  # spill into the void: count, don't write

    def flush():
        tr.spilled += len(tr.records)
        tr.records.clear()

    tr.flush = flush
    with obs_session(Observability(tracer=tr)):
        mw = small_city(seed=5)
        mw.inject([EdgeRequest(cycles=2e9, time=30.0 * i,
                               source="district-0/building-0")
                   for i in range(100)])
        mw.run_until(0.25 * DAY)
    assert len(tr) > 1000                  # the run actually traced
    assert tr.peak_buffered <= 256         # O(buffer), not O(run)


@pytest.mark.slow
def test_streaming_peak_memory_bounded_at_16x_fleet(tmp_path):
    """E14-scale acceptance: a 16x fleet day streams with O(buffer) memory."""
    from repro.experiments.common import small_city
    from repro.core.requests import EdgeRequest
    from repro.sim.calendar import DAY
    from repro.sim.rng import RngRegistry
    from repro.workloads.edge import EdgeWorkloadConfig, EdgeWorkloadGenerator

    tr = JsonlTracer(tmp_path / "big.jsonl", buffer_records=4096)
    with obs_session(Observability(tracer=tr)):
        mw = small_city(seed=7, n_districts=16)   # 16x the 1x bench fleet
        rngs = RngRegistry(7)
        edge = []
        for bname in mw.buildings:
            gen = EdgeWorkloadGenerator(
                rngs.stream(f"edge-{bname}"), source=bname,
                config=EdgeWorkloadConfig(rate_per_hour=60.0))
            edge.extend(gen.generate(0.0, DAY))
        mw.inject(edge)
        mw.run_until(DAY)
    assert len(tr) > 100_000
    assert tr.peak_buffered <= 4096


# --------------------------------------------------------------------------- #
# flight recorder
# --------------------------------------------------------------------------- #
def test_ring_tracer_keeps_last_n():
    tr = RingTracer(capacity=10)
    for i in range(100):
        tr.emit("request", "x", float(i))
    assert len(tr) == 10
    assert tr.total_emitted == 100
    assert [r.ts for r in tr.iter_records()] == [float(i) for i in range(90, 100)]


def test_ring_tracer_with_kind_filter():
    tr = RingTracer(capacity=4, kinds={"keep"})
    for i in range(10):
        tr.emit("keep", "x", float(i))
        tr.emit("drop", "y", float(i))
    assert tr.total_emitted == 10           # only the kept kind counted
    assert all(r.kind == "keep" for r in tr.iter_records())
