"""Tests for segmentation policies and isolation auditing."""

import pytest

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.requests import CloudRequest, EdgeRequest, Flow
from repro.hardware.qrad import QRad
from repro.network.segmentation import (
    IsolationAuditor,
    Segment,
    SegmentationPolicy,
    Violation,
)
from repro.sim.engine import Engine


def edge(privacy=True, server=""):
    r = EdgeRequest(cycles=1e8, time=0.0, deadline_s=1.0, privacy_sensitive=privacy)
    r.executed_on = server
    return r


def cloud(server=""):
    r = CloudRequest(cycles=1e9, time=0.0)
    r.executed_on = server
    return r


def test_flat_policy_allows_everything_on_shared():
    p = SegmentationPolicy.flat()
    assert p.check(edge(), Segment.SHARED)
    assert p.check(cloud(), Segment.SHARED)
    assert not p.check(edge(), Segment.EDGE_VPN)  # flat has no VPN segment


def test_isolated_policy_partitions_flows():
    p = SegmentationPolicy.isolated()
    assert p.check(edge(), Segment.EDGE_VPN)
    assert not p.check(edge(), Segment.DCC_NET)
    assert p.check(cloud(), Segment.DCC_NET)
    assert not p.check(cloud(), Segment.EDGE_VPN)


def test_privacy_requires_vpn():
    p = SegmentationPolicy(
        allowed=((Flow.EDGE, Segment.DCC_NET), (Flow.EDGE, Segment.EDGE_VPN)),
        privacy_requires_vpn=True,
    )
    assert p.check(edge(privacy=False), Segment.DCC_NET)
    assert not p.check(edge(privacy=True), Segment.DCC_NET)
    assert p.check(edge(privacy=True), Segment.EDGE_VPN)


def make_cluster():
    eng = Engine()
    c = Cluster(ClusterConfig(name="c0"))
    c.add_worker(QRad("edge-srv", eng), dedicated_edge=True)
    c.add_worker(QRad("dcc-srv", eng))
    return c


def test_segments_from_cluster_dedication():
    c = make_cluster()
    seg = IsolationAuditor.segments_for_cluster(c)
    assert seg == {"edge-srv": Segment.EDGE_VPN, "dcc-srv": Segment.DCC_NET}
    flat = IsolationAuditor.segments_for_cluster(c, shared=True)
    assert set(flat.values()) == {Segment.SHARED}


def test_audit_clean_class2_placement():
    c = make_cluster()
    auditor = IsolationAuditor(
        SegmentationPolicy.isolated(), IsolationAuditor.segments_for_cluster(c)
    )
    reqs = [edge(server="edge-srv"), cloud(server="dcc-srv")]
    assert auditor.audit(reqs) == []


def test_audit_detects_edge_on_dcc_segment():
    c = make_cluster()
    auditor = IsolationAuditor(
        SegmentationPolicy.isolated(), IsolationAuditor.segments_for_cluster(c)
    )
    bad = edge(server="dcc-srv")
    violations = auditor.audit([bad])
    assert len(violations) == 1
    v = violations[0]
    assert isinstance(v, Violation)
    assert v.server == "dcc-srv"
    assert v.flow == "edge"
    assert v.privacy_sensitive


def test_audit_detects_cloud_on_edge_vpn():
    c = make_cluster()
    auditor = IsolationAuditor(
        SegmentationPolicy.isolated(), IsolationAuditor.segments_for_cluster(c)
    )
    assert len(auditor.audit([cloud(server="edge-srv")])) == 1


def test_audit_ignores_datacenter_and_unplaced():
    auditor = IsolationAuditor(SegmentationPolicy.isolated(), {})
    assert auditor.audit([edge(server="dc"), edge(server="")]) == []


def test_audit_unknown_server_is_violation():
    auditor = IsolationAuditor(SegmentationPolicy.isolated(), {})
    assert len(auditor.audit([edge(server="rogue-box")])) == 1


def test_dedicated_scheduler_never_violates_isolation():
    """End-to-end: class-2 scheduling satisfies the isolated policy."""
    from repro.core.scheduling.dedicated import DedicatedWorkersScheduler

    eng = Engine()
    c = Cluster(ClusterConfig(name="c0"))
    c.add_worker(QRad("edge-srv", eng), dedicated_edge=True)
    c.add_worker(QRad("dcc-srv", eng))
    sched = DedicatedWorkersScheduler(c, eng)
    reqs = []
    for i in range(6):
        e = EdgeRequest(cycles=1e8, time=0.0, deadline_s=60.0, source="d")
        sched.submit_edge(e)
        reqs.append(e)
        cl = CloudRequest(cycles=1e9, time=0.0)
        sched.submit_cloud(cl)
        reqs.append(cl)
    eng.run_until(600.0)
    auditor = IsolationAuditor(
        SegmentationPolicy.isolated(), IsolationAuditor.segments_for_cluster(c)
    )
    assert auditor.audit(reqs) == []
