"""Integration tests for the assembled DF3 middleware."""

import pytest

from repro.core.middleware import DF3Middleware, MiddlewareConfig
from repro.core.requests import CloudRequest, EdgeRequest, HeatingRequest, RequestStatus
from repro.core.scheduling.base import SaturationPolicy
from repro.sim.calendar import DAY, HOUR

GHZ = 1e9

WINTER = 10 * DAY


def small_config(**kw):
    defaults = dict(
        n_districts=2, buildings_per_district=1, rooms_per_building=2,
        dc_nodes=2, seed=3, start_time=WINTER,
    )
    defaults.update(kw)
    return MiddlewareConfig(**defaults)


@pytest.fixture()
def mw():
    return DF3Middleware(small_config())


def test_build_shape(mw):
    assert len(mw.clusters) == 2
    assert len(mw.buildings) == 2
    assert len(mw.all_servers) == 4  # 2 districts × 1 building × 2 rooms
    assert len(mw.regulators) == 4
    assert mw.datacenter is not None


def test_config_validation():
    with pytest.raises(ValueError):
        MiddlewareConfig(architecture="weird")
    with pytest.raises(ValueError):
        MiddlewareConfig(architecture="dedicated", dedicated_per_cluster=0)
    with pytest.raises(ValueError):
        MiddlewareConfig(thermal_tick_s=0.0)


def test_heating_flow_sets_regulator_targets(mw):
    room = "district-0/building-0/room-0"
    mw.submit_heating(HeatingRequest(target_temp_c=23.0, time=WINTER, rooms=(room,)))
    assert mw.regulators[room].setpoint_c == 23.0
    with pytest.raises(KeyError):
        mw.submit_heating(HeatingRequest(target_temp_c=21.0, time=WINTER, rooms=("nope",)))


def test_collective_heating_request(mw):
    rooms = ("district-0/building-0/room-0", "district-0/building-0/room-1")
    mw.submit_heating(HeatingRequest(target_temp_c=22.0, time=WINTER, rooms=rooms, collective=True))
    assert all(mw.regulators[r].setpoint_c == 22.0 for r in rooms)


def test_edge_flow_end_to_end(mw):
    req = EdgeRequest(cycles=0.2 * GHZ, time=WINTER, deadline_s=5.0,
                      source="district-0/building-0", input_bytes=2e3)
    mw.engine.run_until(WINTER)  # settle
    mw.submit_edge(req)
    mw.run_until(WINTER + 60.0)
    assert req.status is RequestStatus.COMPLETED
    assert req.deadline_met()
    assert req.executed_on.startswith("district-0/")


def test_edge_routing_by_source(mw):
    req = EdgeRequest(cycles=0.2 * GHZ, time=WINTER, deadline_s=5.0,
                      source="district-1/building-0", input_bytes=2e3)
    mw.submit_edge(req)
    mw.run_until(WINTER + 60.0)
    assert req.executed_on.startswith("district-1/")
    bad = EdgeRequest(cycles=GHZ, time=WINTER, deadline_s=5.0, source="garbage")
    with pytest.raises(ValueError):
        mw.submit_edge(bad)


def test_cloud_flow_end_to_end(mw):
    req = CloudRequest(cycles=10 * GHZ, time=WINTER, cores=2, input_bytes=1e6)
    mw.submit_cloud(req)
    mw.run_until(WINTER + HOUR)
    assert req.status is RequestStatus.COMPLETED


def test_winter_rooms_track_setpoint():
    mw = DF3Middleware(small_config())
    mw.run_until(WINTER + 3 * DAY)
    stats = mw.comfort.result()
    assert stats.mean_temp_c > 18.5
    assert stats.time_in_band > 0.6


def test_filler_generates_heat_and_compute():
    mw = DF3Middleware(small_config())
    mw.run_until(WINTER + DAY)
    assert mw.filler_completed > 0
    assert mw.total_cycles_executed() > 0
    assert mw.fleet_energy_j() > 0
    assert mw.ledger.useful_heat_j > 0


def test_filler_can_be_disabled():
    mw = DF3Middleware(small_config(enable_filler=False))
    mw.run_until(WINTER + 0.5 * DAY)
    assert mw.filler_completed == 0


def test_summer_servers_power_down():
    """In July rooms don't want heat: boards off (the hybrid infrastructure)."""
    mw = DF3Middleware(small_config(start_time=200 * DAY))
    mw.run_until(200 * DAY + DAY)
    assert all(not s.enabled for s in mw.all_servers)
    assert mw.smartgrid.available_cores() == 0


def test_winter_capacity_exceeds_summer():
    mw = DF3Middleware(small_config(start_time=5 * DAY))
    mw.run_until(7 * DAY)
    winter_cores = mw.smartgrid.available_cores()
    mws = DF3Middleware(small_config(start_time=200 * DAY))
    mws.run_until(202 * DAY)
    assert winter_cores > mws.smartgrid.available_cores()


def test_dedicated_architecture_builds():
    mw = DF3Middleware(small_config(architecture="dedicated", dedicated_per_cluster=1))
    for c in mw.clusters.values():
        assert len(c.edge_dedicated_workers) == 1


def test_inject_schedules_all_kinds(mw):
    room = "district-0/building-0/room-0"
    reqs = [
        HeatingRequest(target_temp_c=22.5, time=WINTER + 10.0, rooms=(room,)),
        EdgeRequest(cycles=0.2 * GHZ, time=WINTER + 20.0, deadline_s=5.0,
                    source="district-0/building-0", input_bytes=2e3),
        CloudRequest(cycles=GHZ, time=WINTER + 30.0),
    ]
    mw.inject(reqs)
    mw.run_until(WINTER + HOUR)
    assert mw.regulators[room].setpoint_c == 22.5
    assert reqs[1].status is RequestStatus.COMPLETED
    assert reqs[2].status is RequestStatus.COMPLETED
    with pytest.raises(TypeError):
        mw.inject([object()])


def test_boilers_join_fleet():
    mw = DF3Middleware(small_config(boilers_per_district=1))
    assert len(mw.boilers) == 2
    assert len(mw.all_servers) == 6
    mw.run_until(WINTER + DAY)
    # boiler absorbed some compute heat into its tank
    assert any(b.useful_heat_j > 0 for b in mw.boilers)


def test_deterministic_across_runs():
    a = DF3Middleware(small_config(seed=7))
    a.run_until(WINTER + DAY)
    b = DF3Middleware(small_config(seed=7))
    b.run_until(WINTER + DAY)
    assert a.fleet_energy_j() == b.fleet_energy_j()
    assert a.filler_completed == b.filler_completed
    assert a.comfort.result().mean_temp_c == b.comfort.result().mean_temp_c


def test_isolation_audit_clean_for_both_architectures():
    """The middleware's placements satisfy its architecture's natural policy."""
    from repro.core.requests import EdgeRequest as ER

    for arch in ("shared", "dedicated"):
        mw = DF3Middleware(small_config(architecture=arch, dedicated_per_cluster=1))
        reqs = [
            ER(cycles=0.2 * GHZ, time=WINTER + 10.0 + i, deadline_s=30.0,
               source="district-0/building-0", input_bytes=2e3)
            for i in range(5)
        ]
        mw.inject(reqs)
        mw.inject([CloudRequest(cycles=GHZ, time=WINTER + 20.0) for _ in range(3)])
        mw.run_until(WINTER + HOUR)
        assert mw.audit_isolation() == [], arch


def test_collective_request_activates_mean_controller(mw):
    rooms = ("district-0/building-0/room-0", "district-0/building-0/room-1")
    mw.submit_heating(HeatingRequest(target_temp_c=22.0, time=WINTER,
                                     rooms=rooms, collective=True))
    ctrl = mw.collectives["district-0/building-0"]
    assert ctrl.active
    assert ctrl.mean_target_c == 22.0
    # an individual request afterwards releases collective control
    mw.submit_heating(HeatingRequest(target_temp_c=19.0, time=WINTER, rooms=(rooms[0],)))
    assert not ctrl.active
    assert mw.regulators[rooms[0]].setpoint_c == 19.0


def test_collective_controller_drives_mean_through_tick():
    mw = DF3Middleware(small_config())
    rooms = tuple(r.name for r in mw.buildings["district-0/building-0"].rooms)
    mw.submit_heating(HeatingRequest(target_temp_c=21.0, time=WINTER,
                                     rooms=rooms, collective=True))
    mw.run_until(WINTER + DAY)
    temps = mw.buildings["district-0/building-0"].temperatures
    assert abs(float(temps.mean()) - 21.0) < 1.0
