"""Tests for the DVFS compute server: execution, energy, preemption."""

import pytest

from repro.hardware.cpu import DVFSLadder, PState
from repro.hardware.server import ComputeServer, ServerSpec, Task, TaskState
from repro.sim.engine import Engine

GHZ = 1e9


def simple_spec(n_cores=4, f=1.0):
    """One P-state at f GHz so completion times are trivial to predict."""
    return ServerSpec(
        model="test",
        n_cores=n_cores,
        ladder=DVFSLadder([PState(f, 1.0)]),
        p_idle_w=50.0,
        p_max_w=250.0,
    )


def two_state_spec(n_cores=4):
    return ServerSpec(
        model="test2",
        n_cores=n_cores,
        ladder=DVFSLadder([PState(1.0, 0.8), PState(2.0, 1.0)]),
        p_idle_w=50.0,
        p_max_w=250.0,
    )


@pytest.fixture()
def engine():
    return Engine()


def test_task_validation():
    with pytest.raises(ValueError):
        Task("t", work_cycles=0.0)
    with pytest.raises(ValueError):
        Task("t", work_cycles=10.0, cores=0)


def test_spec_validation():
    lad = DVFSLadder([PState(1.0, 1.0)])
    with pytest.raises(ValueError):
        ServerSpec("m", 0, lad, 10.0, 100.0)
    with pytest.raises(ValueError):
        ServerSpec("m", 1, lad, 200.0, 100.0)
    with pytest.raises(ValueError):
        ServerSpec("m", 1, lad, 10.0, 100.0, heat_fraction=2.0)


def test_completion_at_exact_time(engine):
    srv = ComputeServer("s", simple_spec(), engine)
    done = []
    t = Task("j1", work_cycles=10 * GHZ, cores=1, on_complete=lambda t, now: done.append(now))
    assert srv.submit(t)
    engine.run_until(100.0)
    assert done == [10.0]  # 10 Gcycles at 1 GHz on 1 core
    assert t.state is TaskState.COMPLETED
    assert t.remaining_cycles == 0.0


def test_multicore_task_speedup(engine):
    srv = ComputeServer("s", simple_spec(), engine)
    done = []
    t = Task("j1", work_cycles=10 * GHZ, cores=2, on_complete=lambda t, now: done.append(now))
    srv.submit(t)
    engine.run_until(100.0)
    assert done == [5.0]


def test_rejects_when_full(engine):
    srv = ComputeServer("s", simple_spec(n_cores=2), engine)
    assert srv.submit(Task("a", GHZ, cores=2))
    assert not srv.submit(Task("b", GHZ, cores=1))


def test_oversized_task_raises(engine):
    srv = ComputeServer("s", simple_spec(n_cores=2), engine)
    with pytest.raises(ValueError):
        srv.submit(Task("big", GHZ, cores=3))


def test_duplicate_task_id_raises(engine):
    srv = ComputeServer("s", simple_spec(), engine)
    srv.submit(Task("a", 100 * GHZ))
    with pytest.raises(ValueError):
        srv.submit(Task("a", GHZ))


def test_parallel_tasks_complete_independently(engine):
    srv = ComputeServer("s", simple_spec(n_cores=4), engine)
    done = {}
    for i, cycles in enumerate([2 * GHZ, 6 * GHZ]):
        srv.submit(Task(f"j{i}", cycles, on_complete=lambda t, now: done.setdefault(t.task_id, now)))
    engine.run_until(100.0)
    assert done == {"j0": 2.0, "j1": 6.0}


def test_freq_cap_slows_execution(engine):
    srv = ComputeServer("s", two_state_spec(), engine)
    done = []
    srv.set_freq_cap(0)  # 1 GHz instead of 2
    srv.submit(Task("j", 10 * GHZ, on_complete=lambda t, now: done.append(now)))
    engine.run_until(100.0)
    assert done == [10.0]


def test_freq_change_mid_flight_reschedules(engine):
    srv = ComputeServer("s", two_state_spec(), engine)
    done = []
    srv.submit(Task("j", 10 * GHZ, on_complete=lambda t, now: done.append(now)))
    # at 2 GHz it would finish at t=5; slow to 1 GHz at t=2.5 → 5 G left → +5 s
    engine.run_until(2.5)
    srv.set_freq_cap(0)
    engine.run_until(100.0)
    assert done == [pytest.approx(7.5)]


def test_preempt_preserves_remaining_work(engine):
    srv = ComputeServer("s", simple_spec(), engine)
    srv.submit(Task("j", 10 * GHZ))
    engine.run_until(4.0)
    task = srv.preempt("j")
    assert task.state is TaskState.PREEMPTED
    assert task.remaining_cycles == pytest.approx(6 * GHZ)
    assert srv.busy_cores == 0
    # resubmit elsewhere
    done = []
    task.on_complete = lambda t, now: done.append(now)
    srv2 = ComputeServer("s2", simple_spec(), engine)
    srv2.submit(task)
    engine.run_until(100.0)
    assert done == [pytest.approx(10.0)]


def test_preempt_unknown_raises(engine):
    srv = ComputeServer("s", simple_spec(), engine)
    with pytest.raises(KeyError):
        srv.preempt("ghost")


def test_kill_all(engine):
    srv = ComputeServer("s", simple_spec(), engine)
    srv.submit(Task("a", GHZ))
    srv.submit(Task("b", GHZ))
    killed = srv.kill_all()
    assert {t.task_id for t in killed} == {"a", "b"}
    assert all(t.state is TaskState.KILLED for t in killed)
    assert srv.busy_cores == 0


def test_power_model_idle_vs_busy(engine):
    srv = ComputeServer("s", simple_spec(n_cores=4), engine)
    assert srv.power_w() == 50.0
    srv.submit(Task("a", 1000 * GHZ, cores=4))
    assert srv.power_w() == pytest.approx(250.0)
    assert srv.heat_output_w() == pytest.approx(250.0)


def test_power_scales_with_utilization(engine):
    srv = ComputeServer("s", simple_spec(n_cores=4), engine)
    srv.submit(Task("a", 1000 * GHZ, cores=2))
    assert srv.power_w() == pytest.approx(50.0 + 200.0 * 0.5)


def test_dvfs_reduces_power(engine):
    srv = ComputeServer("s", two_state_spec(), engine)
    srv.submit(Task("a", 1000 * GHZ, cores=4))
    p_full = srv.power_w()
    srv.set_freq_cap(0)
    assert srv.power_w() < p_full


def test_energy_integration(engine):
    srv = ComputeServer("s", simple_spec(n_cores=1), engine)
    srv.submit(Task("a", 10 * GHZ, cores=1))  # busy for 10 s at 250 W
    engine.run_until(20.0)
    srv.sync()
    expected = 250.0 * 10.0 + 50.0 * 10.0
    assert srv.energy_j == pytest.approx(expected)
    assert srv.busy_core_seconds == pytest.approx(10.0)
    assert srv.cycles_executed == pytest.approx(10 * GHZ)


def test_power_off_refuses_work_and_draws_nothing(engine):
    srv = ComputeServer("s", simple_spec(), engine)
    srv.power_off()
    assert srv.power_w() == 0.0
    assert not srv.submit(Task("a", GHZ))
    srv.power_on()
    assert srv.submit(Task("a", GHZ))


def test_power_off_with_running_tasks_raises(engine):
    srv = ComputeServer("s", simple_spec(), engine)
    srv.submit(Task("a", 100 * GHZ))
    with pytest.raises(RuntimeError):
        srv.power_off()


def test_off_server_accumulates_no_energy(engine):
    srv = ComputeServer("s", simple_spec(), engine)
    srv.power_off()
    engine.run_until(100.0)
    srv.sync()
    assert srv.energy_j == 0.0


def test_completion_callback_can_submit_next(engine):
    """Chained submissions from callbacks must work (schedulers rely on it)."""
    srv = ComputeServer("s", simple_spec(n_cores=1), engine)
    finished = []

    def chain(task, now):
        finished.append((task.task_id, now))
        if len(finished) < 3:
            srv.submit(Task(f"j{len(finished)}", 2 * GHZ, on_complete=chain))

    srv.submit(Task("j0", 2 * GHZ, on_complete=chain))
    engine.run_until(100.0)
    assert finished == [("j0", 2.0), ("j1", 4.0), ("j2", 6.0)]
    assert srv.completed_count == 3
