"""Tests for the DVFS heat regulator."""

import pytest

from repro.core.regulation import HeatRegulator, RegulatorConfig
from repro.hardware.qrad import QRad
from repro.hardware.server import Task
from repro.sim.engine import Engine


def test_config_validation():
    with pytest.raises(ValueError):
        RegulatorConfig(kp=-1.0)
    with pytest.raises(ValueError):
        RegulatorConfig(integral_limit=0.0)
    with pytest.raises(ValueError):
        RegulatorConfig(off_threshold=2.0)


def test_cold_room_demands_full_power():
    reg = HeatRegulator()
    reg.set_target(21.0)
    u = reg.update(300.0, room_temp_c=15.0)
    assert u == 1.0
    assert reg.heat_wanted


def test_warm_room_demands_nothing():
    reg = HeatRegulator()
    reg.set_target(20.0)
    for _ in range(10):
        u = reg.update(300.0, room_temp_c=24.0)
    assert u == 0.0
    assert not reg.heat_wanted


def test_proportional_band_between():
    reg = HeatRegulator(RegulatorConfig(kp=0.5, ki=0.0))
    reg.set_target(20.0)
    u = reg.update(300.0, room_temp_c=19.0)  # 1 °C error → 0.5
    assert u == pytest.approx(0.5)


def test_integral_accumulates_and_clamps():
    cfg = RegulatorConfig(kp=0.0, ki=1.0, integral_limit=0.5)
    reg = HeatRegulator(cfg)
    reg.set_target(20.0)
    for _ in range(100):
        reg.update(3600.0, room_temp_c=19.0)  # 1 °C·h per step
    assert reg._integral == pytest.approx(0.5)  # clamped
    # anti-windup: warm room unwinds quickly
    for _ in range(100):
        reg.update(3600.0, room_temp_c=25.0)
    assert reg.power_fraction == 0.0


def test_set_target_validation():
    reg = HeatRegulator()
    with pytest.raises(ValueError):
        reg.set_target(40.0)
    with pytest.raises(ValueError):
        reg.update(0.0, 20.0)


def test_apply_powers_off_idle_cold_server():
    eng = Engine()
    q = QRad("q", eng)
    reg = HeatRegulator()
    reg.set_target(20.0)
    reg.update(300.0, room_temp_c=25.0)  # no heat wanted
    reg.apply_to_server(q)
    assert not q.enabled


def test_apply_never_powers_off_busy_server():
    eng = Engine()
    q = QRad("q", eng)
    q.submit(Task("j", 1e15, cores=1))
    reg = HeatRegulator()
    reg.update(300.0, room_temp_c=25.0)
    reg.apply_to_server(q)
    assert q.enabled  # draining is the scheduler's job


def test_apply_powers_back_on_and_caps_frequency():
    eng = Engine()
    q = QRad("q", eng)
    q.power_off()
    reg = HeatRegulator(RegulatorConfig(kp=0.5, ki=0.0))
    reg.set_target(20.0)
    reg.update(300.0, room_temp_c=19.2)  # 0.4 demand
    reg.apply_to_server(q)
    assert q.enabled
    assert q.spec.ladder.power_scale(q.freq_index) <= 0.4 + 1e-9


def test_full_demand_means_top_frequency():
    eng = Engine()
    q = QRad("q", eng)
    reg = HeatRegulator()
    reg.set_target(22.0)
    reg.update(300.0, room_temp_c=10.0)
    reg.apply_to_server(q)
    assert q.freq_index == len(q.spec.ladder) - 1


def test_reset_clears_state():
    reg = HeatRegulator()
    reg.update(3600.0, room_temp_c=10.0)
    reg.reset()
    assert reg._integral == 0.0
    assert reg.power_fraction == 0.0


def test_closed_loop_tracks_setpoint():
    """Regulator + RC room converge near the setpoint in winter conditions."""
    from repro.thermal.rc_model import RCNetwork, RoomThermalParams

    net = RCNetwork([RoomThermalParams()], t_init_c=16.0)
    reg = HeatRegulator()
    reg.set_target(20.0)
    p_max = 500.0
    for _ in range(24 * 12):  # one day, 5-minute ticks
        u = reg.update(300.0, float(net.t_air[0]))
        net.step(300.0, t_out=3.0, p_heat=u * p_max)
    assert net.t_air[0] == pytest.approx(20.0, abs=0.7)
