"""Tests for clusters and queue disciplines."""

import pytest

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.requests import EdgeRequest
from repro.core.scheduling.queues import EDFQueue, FCFSQueue
from repro.hardware.qrad import QRad
from repro.sim.engine import Engine


@pytest.fixture()
def engine():
    return Engine()


def make_cluster(engine, n=4):
    c = Cluster(ClusterConfig(name="c0"))
    for i in range(n):
        c.add_worker(QRad(f"q{i}", engine))
    return c


# --------------------------------------------------------------------------- #
# cluster
# --------------------------------------------------------------------------- #
def test_cluster_counts(engine):
    c = make_cluster(engine, 3)
    assert len(c) == 3
    assert c.total_cores() == 48
    assert c.free_cores() == 48
    assert c.utilization() == 0.0


def test_duplicate_worker_rejected(engine):
    c = make_cluster(engine, 1)
    with pytest.raises(ValueError):
        c.add_worker(c.workers[0])


def test_dedicated_pool(engine):
    c = Cluster(ClusterConfig(name="c0"))
    c.add_worker(QRad("a", engine), dedicated_edge=True)
    c.add_worker(QRad("b", engine))
    assert [w.name for w in c.edge_dedicated_workers] == ["a"]
    assert [w.name for w in c.general_workers] == ["b"]
    c.dedicate_to_edge("b")
    assert len(c.edge_dedicated_workers) == 2
    with pytest.raises(KeyError):
        c.dedicate_to_edge("ghost")


def test_worker_lookup(engine):
    c = make_cluster(engine, 2)
    assert c.worker("q1").name == "q1"
    with pytest.raises(KeyError):
        c.worker("nope")


def test_wsn_partition(engine):
    servers = [QRad(f"q{i}", engine) for i in range(8)]
    # two clear spatial groups
    positions = [(0, 0), (0, 1), (1, 0), (1, 1), (10, 10), (10, 11), (11, 10), (11, 11)]
    clusters = Cluster.partition_wsn(servers, positions, k=2)
    assert len(clusters) == 2
    sizes = sorted(len(c) for c in clusters)
    assert sizes == [4, 4]
    names = {w.name for c in clusters for w in c.workers}
    assert names == {f"q{i}" for i in range(8)}


def test_wsn_partition_validation(engine):
    servers = [QRad("q0", engine)]
    with pytest.raises(ValueError):
        Cluster.partition_wsn(servers, [(0, 0)], k=2)
    with pytest.raises(ValueError):
        Cluster.partition_wsn(servers, [], k=1)


# --------------------------------------------------------------------------- #
# queues
# --------------------------------------------------------------------------- #
def test_fcfs_order_and_front():
    q = FCFSQueue()
    q.push("a")
    q.push("b")
    q.push_front("urgent")
    assert len(q) == 3
    assert q.peek() == "urgent"
    assert [q.pop(), q.pop(), q.pop()] == ["urgent", "a", "b"]
    assert not q
    assert q.peek() is None


def edge(t, deadline):
    return EdgeRequest(cycles=1e8, time=t, deadline_s=deadline)


def test_edf_orders_by_absolute_deadline():
    q = EDFQueue()
    late = edge(0.0, 10.0)    # absolute 10
    urgent = edge(5.0, 1.0)   # absolute 6
    q.push(late)
    q.push(urgent)
    assert q.peek() is urgent
    assert q.pop() is urgent
    assert q.pop() is late


def test_edf_pop_expired():
    q = EDFQueue()
    a = edge(0.0, 1.0)   # expires at 1
    b = edge(0.0, 100.0)
    q.push(a)
    q.push(b)
    expired = q.pop_expired(now=50.0)
    assert expired == [a]
    assert len(q) == 1
    assert q.pop_expired(now=0.5) == []


def test_edf_stable_for_equal_deadlines():
    q = EDFQueue()
    a, b = edge(0.0, 5.0), edge(0.0, 5.0)
    q.push(a)
    q.push(b)
    assert q.pop() is a
    assert q.pop() is b


# --------------------------------------------------------------------------- #
# property tests
# --------------------------------------------------------------------------- #
from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=50, deadline=None)
@given(
    reqs=st.lists(
        st.tuples(st.floats(min_value=0, max_value=100),
                  st.floats(min_value=0.1, max_value=50)),
        min_size=1, max_size=30,
    )
)
def test_property_edf_pops_in_absolute_deadline_order(reqs):
    q = EDFQueue()
    for t, d in reqs:
        q.push(edge(t, d))
    popped = []
    while q:
        popped.append(q.pop())
    deadlines = [r.time + r.deadline_s for r in popped]
    assert deadlines == sorted(deadlines)


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["push", "push_front", "pop"]), st.integers()),
        min_size=1, max_size=40,
    )
)
def test_property_fcfs_is_a_consistent_deque(ops):
    """FCFS mirrors a reference deque under arbitrary operation sequences."""
    from collections import deque

    q = FCFSQueue()
    ref = deque()
    for op, val in ops:
        if op == "push":
            q.push(val)
            ref.append(val)
        elif op == "push_front":
            q.push_front(val)
            ref.appendleft(val)
        elif ref:
            assert q.pop() == ref.popleft()
        assert len(q) == len(ref)
        assert q.peek() == (ref[0] if ref else None)
