"""Tests for collective-mean heating control and request trace replay."""

import numpy as np
import pytest

from repro.core.collective import CollectiveConfig, CollectiveController
from repro.core.regulation import HeatRegulator
from repro.core.requests import CloudRequest, EdgeMode, EdgeRequest, HeatingRequest
from repro.sim.calendar import HOUR
from repro.thermal.rc_model import RCNetwork, RoomThermalParams
from repro.workloads.traces import Trace, requests_from_trace, requests_to_trace


# --------------------------------------------------------------------------- #
# collective control
# --------------------------------------------------------------------------- #
def make_controller(n=3, **cfg):
    regs = [HeatRegulator() for _ in range(n)]
    return CollectiveController(regs, CollectiveConfig(**cfg)), regs


def test_config_validation():
    with pytest.raises(ValueError):
        CollectiveConfig(gain=0.0)
    with pytest.raises(ValueError):
        CollectiveConfig(floor_c=25.0, ceiling_c=20.0)
    with pytest.raises(ValueError):
        CollectiveController([])


def test_set_mean_target_initialises_all_rooms():
    ctrl, regs = make_controller()
    ctrl.set_mean_target(21.0)
    assert ctrl.active
    assert all(r.setpoint_c == 21.0 for r in regs)
    with pytest.raises(ValueError):
        ctrl.set_mean_target(40.0)


def test_cold_room_gets_higher_target():
    ctrl, regs = make_controller(n=2)
    ctrl.set_mean_target(20.0)
    targets = ctrl.update(np.array([18.0, 22.0]))  # mean already 20
    assert targets[0] > targets[1]  # the cold room is pushed harder


def test_targets_respect_bounds():
    ctrl, regs = make_controller(n=2, floor_c=17.0, ceiling_c=23.0, max_spread_c=2.0)
    ctrl.set_mean_target(20.0)
    targets = ctrl.update(np.array([5.0, 35.0]))  # absurd measurements
    assert all(18.0 <= t <= 22.0 for t in targets)  # target ± spread, clamped


def test_inactive_controller_is_a_noop():
    ctrl, regs = make_controller()
    for r in regs:
        r.set_target(19.0)
    assert ctrl.update(np.array([20.0, 20.0, 20.0])) == [19.0, 19.0, 19.0]
    assert ctrl.mean_error_c([20.0, 20.0, 20.0]) == 0.0


def test_shape_mismatch_rejected():
    ctrl, _ = make_controller(n=3)
    ctrl.set_mean_target(20.0)
    with pytest.raises(ValueError):
        ctrl.update(np.array([20.0, 20.0]))


def test_collective_beats_uniform_on_heterogeneous_rooms():
    """Closed loop: a lossy room drags the uniform mean down; the collective

    controller recovers the requested mean by redistributing targets."""
    leaky = RoomThermalParams(r_ea=0.02, r_inf=0.06)  # badly insulated room
    tight = RoomThermalParams()

    def run(collective: bool) -> float:
        net = RCNetwork([leaky, tight], t_init_c=17.0)
        regs = [HeatRegulator(), HeatRegulator()]
        ctrl = CollectiveController(regs)
        if collective:
            ctrl.set_mean_target(20.0)
        else:
            for r in regs:
                r.set_target(20.0)
        p_max = 500.0
        means = []
        for k in range(24 * 12):  # one day, 5-min ticks
            temps = net.t_air.copy()
            if collective:
                ctrl.update(temps)
            powers = []
            for reg, temp in zip(regs, temps):
                u = reg.update(300.0, float(temp))
                powers.append(u * p_max)
            net.step(300.0, t_out=0.0, p_heat=np.array(powers))
            if k > 18 * 12:  # settled tail
                means.append(float(net.t_air.mean()))
        return float(np.mean(means))

    uniform_mean = run(collective=False)
    collective_mean = run(collective=True)
    assert abs(collective_mean - 20.0) < abs(uniform_mean - 20.0)


# --------------------------------------------------------------------------- #
# request trace replay
# --------------------------------------------------------------------------- #
def sample_requests():
    return [
        HeatingRequest(target_temp_c=21.0, time=10.0, rooms=("a", "b"), collective=True),
        EdgeRequest(cycles=2e8, time=20.0, cores=1, input_bytes=2e3, output_bytes=500.0,
                    deadline_s=1.5, mode=EdgeMode.DIRECT, source="district-0/b",
                    privacy_sensitive=True),
        CloudRequest(cycles=5e9, time=30.0, cores=4, input_bytes=1e6,
                     output_bytes=2e6, user="studio-7", preemptible=False),
    ]


def test_roundtrip_preserves_all_input_fields(tmp_path):
    reqs = sample_requests()
    trace = requests_to_trace(reqs)
    p = tmp_path / "workload.jsonl"
    trace.save(p)
    back = requests_from_trace(Trace.load(p))
    assert len(back) == 3
    h, e, c = back
    assert isinstance(h, HeatingRequest) and h.rooms == ("a", "b") and h.collective
    assert isinstance(e, EdgeRequest)
    assert (e.cycles, e.deadline_s, e.mode, e.source, e.privacy_sensitive) == (
        2e8, 1.5, EdgeMode.DIRECT, "district-0/b", True
    )
    assert isinstance(c, CloudRequest)
    assert (c.cores, c.user, c.preemptible) == (4, "studio-7", False)
    assert [r.time for r in back] == [10.0, 20.0, 30.0]


def test_replayed_requests_are_fresh():
    reqs = sample_requests()
    reqs[2].mark_completed(99.0)  # outcome state must not leak into the trace
    back = requests_from_trace(requests_to_trace(reqs))
    assert back[2].status.value == "created"
    assert back[2].request_id != reqs[2].request_id


def test_serialise_unknown_type_rejected():
    with pytest.raises(TypeError):
        requests_to_trace([object()])


def test_deserialise_bad_trace_rejected():
    t = Trace()
    t.append(1.0, "edge", cycles=1e8)  # missing fields
    with pytest.raises(ValueError):
        requests_from_trace(t)
    t2 = Trace()
    t2.append(1.0, "mystery")
    with pytest.raises(ValueError):
        requests_from_trace(t2)
