"""Tests for the two architecture classes and saturation policies."""

import pytest

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.requests import CloudRequest, EdgeRequest, RequestStatus
from repro.core.scheduling.base import SaturationPolicy
from repro.core.scheduling.dedicated import DedicatedWorkersScheduler
from repro.core.scheduling.shared import SharedWorkersScheduler
from repro.hardware.cpu import DVFSLadder, PState
from repro.hardware.server import ComputeServer, ServerSpec, Task
from repro.sim.engine import Engine

GHZ = 1e9


def spec(n_cores=4):
    return ServerSpec("t", n_cores, DVFSLadder([PState(1.0, 1.0)]), 10.0, 100.0)


def make_cluster(engine, n_workers=2, cores=4, dedicated=0):
    c = Cluster(ClusterConfig(name="c0"))
    for i in range(n_workers):
        c.add_worker(ComputeServer(f"w{i}", spec(cores), engine), dedicated_edge=i < dedicated)
    return c


def edge(t=0.0, cycles=1 * GHZ, deadline=10.0, cores=1):
    return EdgeRequest(cycles=cycles, time=t, deadline_s=deadline, cores=cores, source="district-0/b")


def cloud(t=0.0, cycles=1 * GHZ, cores=1, preemptible=True):
    return CloudRequest(cycles=cycles, time=t, cores=cores, preemptible=preemptible)


# --------------------------------------------------------------------------- #
# shared architecture (class 1)
# --------------------------------------------------------------------------- #
def test_shared_places_both_flows_anywhere():
    eng = Engine()
    sched = SharedWorkersScheduler(make_cluster(eng), eng)
    e, c = edge(), cloud()
    sched.submit_edge(e)
    sched.submit_cloud(c)
    assert e.status is RequestStatus.RUNNING
    assert c.status is RequestStatus.RUNNING
    eng.run_until(100.0)
    assert e.deadline_met()
    assert [r.request_id for r in sched.completed_edge] == [e.request_id]
    assert [r.request_id for r in sched.completed_cloud] == [c.request_id]


def test_cloud_queues_when_full_and_drains():
    eng = Engine()
    sched = SharedWorkersScheduler(make_cluster(eng, n_workers=1, cores=2), eng)
    a = cloud(cycles=2 * GHZ, cores=2)  # runs 1 s on 2 cores at 1 GHz
    b = cloud(cycles=2 * GHZ, cores=2)
    sched.submit_cloud(a)
    sched.submit_cloud(b)
    assert b.status is RequestStatus.QUEUED
    assert sched.stats.cloud_queued == 1
    eng.run_until(100.0)
    assert b.status is RequestStatus.COMPLETED
    assert b.completed_at == pytest.approx(2.0)  # FCFS: after a


def test_edge_queue_policy_waits():
    eng = Engine()
    sched = SharedWorkersScheduler(
        make_cluster(eng, n_workers=1, cores=1), eng, policy=SaturationPolicy.QUEUE
    )
    blocker = cloud(cycles=5 * GHZ)  # 5 s
    sched.submit_cloud(blocker)
    e = edge(deadline=20.0)
    sched.submit_edge(e)
    assert e.status is RequestStatus.QUEUED
    eng.run_until(100.0)
    assert e.status is RequestStatus.COMPLETED
    assert e.completed_at == pytest.approx(6.0)  # waited for the blocker


def test_edge_expires_in_queue():
    eng = Engine()
    sched = SharedWorkersScheduler(
        make_cluster(eng, n_workers=1, cores=1), eng, policy=SaturationPolicy.QUEUE
    )
    sched.submit_cloud(cloud(cycles=50 * GHZ))  # 50 s blocker
    e = edge(deadline=2.0)
    sched.submit_edge(e)
    eng.run_until(100.0)
    assert e.status is RequestStatus.REJECTED
    assert sched.stats.edge_expired == 1
    assert sched.edge_deadline_miss_rate() == 1.0  # the only edge request missed
    assert len(sched.completed_edge) == 0


def test_preempt_policy_frees_cores_for_edge():
    eng = Engine()
    sched = SharedWorkersScheduler(
        make_cluster(eng, n_workers=1, cores=2), eng, policy=SaturationPolicy.PREEMPT
    )
    blocker = cloud(cycles=20 * GHZ, cores=2)  # would run 10 s
    sched.submit_cloud(blocker)
    eng.run_until(2.0)
    e = edge(t=2.0, cycles=1 * GHZ, deadline=3.0)
    sched.submit_edge(e)
    assert e.status is RequestStatus.RUNNING
    assert blocker.status is RequestStatus.QUEUED  # preempted, requeued
    assert sched.stats.cloud_preempted == 1
    eng.run_until(100.0)
    assert e.deadline_met()
    assert blocker.status is RequestStatus.COMPLETED
    # blocker kept its progress: 2 s done before preemption, 16 GHz·2cores left
    # edge ran 1 s on 1 core; blocker resumed when 2 cores free at t=3
    assert blocker.completed_at == pytest.approx(3.0 + 16.0 * GHZ / (2 * GHZ))


def test_preempt_skips_non_preemptible():
    eng = Engine()
    sched = SharedWorkersScheduler(
        make_cluster(eng, n_workers=1, cores=1), eng, policy=SaturationPolicy.PREEMPT
    )
    sched.submit_cloud(cloud(cycles=50 * GHZ, preemptible=False))
    e = edge(deadline=1.0)
    sched.submit_edge(e)
    assert e.status is RequestStatus.QUEUED  # nothing preemptible → queued


def test_edf_order_among_queued_edges():
    eng = Engine()
    sched = SharedWorkersScheduler(
        make_cluster(eng, n_workers=1, cores=1), eng, policy=SaturationPolicy.QUEUE
    )
    sched.submit_cloud(cloud(cycles=5 * GHZ))
    loose = edge(deadline=100.0, cycles=1 * GHZ)
    tight = edge(deadline=10.0, cycles=1 * GHZ)
    sched.submit_edge(loose)
    sched.submit_edge(tight)
    eng.run_until(200.0)
    assert tight.completed_at < loose.completed_at


def test_context_switch_cost_penalises_flow_changes():
    eng = Engine()
    sched = SharedWorkersScheduler(
        make_cluster(eng, n_workers=1, cores=4), eng, context_switch_s=2.0
    )
    c = cloud(cycles=1 * GHZ)
    sched.submit_cloud(c)   # first task: no switch (kind initialised)
    e = edge(cycles=1 * GHZ, deadline=50.0)
    sched.submit_edge(e)    # switch cloud→edge on same worker
    assert sched.context_switches == 1
    eng.run_until(100.0)
    assert c.completed_at == pytest.approx(1.0)
    assert e.completed_at == pytest.approx(3.0)  # 1 s work + 2 s reboot


def test_invalid_context_switch():
    eng = Engine()
    with pytest.raises(ValueError):
        SharedWorkersScheduler(make_cluster(eng), eng, context_switch_s=-1.0)


# --------------------------------------------------------------------------- #
# dedicated architecture (class 2)
# --------------------------------------------------------------------------- #
def test_dedicated_requires_pool():
    eng = Engine()
    with pytest.raises(ValueError):
        DedicatedWorkersScheduler(make_cluster(eng, dedicated=0), eng)


def test_dedicated_partitions_flows():
    eng = Engine()
    cluster = make_cluster(eng, n_workers=2, cores=2, dedicated=1)
    sched = DedicatedWorkersScheduler(cluster, eng)
    e, c = edge(), cloud()
    sched.submit_edge(e)
    sched.submit_cloud(c)
    assert e.executed_on == "w0"  # the dedicated worker
    assert c.executed_on == "w1"


def test_dedicated_edge_isolated_from_cloud_saturation():
    """DCC cannot fill the edge pool: edge QoS guaranteed at light load."""
    eng = Engine()
    cluster = make_cluster(eng, n_workers=2, cores=2, dedicated=1)
    sched = DedicatedWorkersScheduler(cluster, eng)
    for _ in range(5):
        sched.submit_cloud(cloud(cycles=100 * GHZ, cores=2))
    e = edge(deadline=5.0)
    sched.submit_edge(e)
    assert e.status is RequestStatus.RUNNING  # pool untouched by DCC flood
    eng.run_until(2.0)
    assert e.deadline_met()


def test_dedicated_wastes_cloud_capacity():
    """The flip side: queued DCC work cannot use an idle edge pool."""
    eng = Engine()
    cluster = make_cluster(eng, n_workers=2, cores=2, dedicated=1)
    sched = DedicatedWorkersScheduler(cluster, eng)
    a = cloud(cycles=10 * GHZ, cores=2)
    b = cloud(cycles=10 * GHZ, cores=2)
    sched.submit_cloud(a)
    sched.submit_cloud(b)
    assert b.status is RequestStatus.QUEUED  # w0 is idle but reserved
    assert cluster.worker("w0").busy_cores == 0


# --------------------------------------------------------------------------- #
# filler eviction
# --------------------------------------------------------------------------- #
def test_real_work_evicts_filler():
    eng = Engine()
    cluster = make_cluster(eng, n_workers=1, cores=2)
    sched = SharedWorkersScheduler(cluster, eng)
    w = cluster.worker("w0")
    for i in range(2):
        w.submit(Task(f"filler-{i}", 1e15, cores=1, metadata={"kind": "filler"}))
    assert w.free_cores == 0
    e = edge(cycles=1 * GHZ, deadline=5.0)
    sched.submit_edge(e)
    assert e.status is RequestStatus.RUNNING
    eng.run_until(10.0)
    assert e.deadline_met()


def test_policy_requires_offloader():
    eng = Engine()
    with pytest.raises(ValueError):
        SharedWorkersScheduler(make_cluster(eng), eng, policy=SaturationPolicy.VERTICAL)
    with pytest.raises(ValueError):
        SharedWorkersScheduler(make_cluster(eng), eng, policy=SaturationPolicy.DECISION)
