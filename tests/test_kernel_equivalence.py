"""Differential fuzz + perf wall for the vectorised simulation kernel.

DESIGN.md §2.13 promises the ``vector`` kernel is byte-identical to the
``scalar`` reference while doing O(active) instead of O(fleet) work per
tick.  This module holds that promise under fire:

* **differential fuzz** — seeded-random :class:`MiddlewareConfig`\\ s
  (architecture, saturation policy, fleet size, boilers, filler, resilience
  on/off) run under both kernels and must produce identical output
  signatures: request multisets, fleet energy, executed cycles, comfort
  statistics, smart-grid logs, event counts;
* **surrogate tolerance fuzz** (DESIGN.md §2.18) — seeded-random cities run
  under ``surrogate`` vs ``vector`` and every metric of the declared budget
  (:mod:`repro.thermal.budget`) is asserted against *those constants*:
  per-district time-mean temperature, comfort-violation rate, fleet energy.
  Sample districts are exempt from the budget because they must match the
  vector kernel **byte-for-byte** — asserted separately;
* **perf-regression guard** — the placement-scan op counter
  (``scan_key_evals``) proves the vector scheduler evaluates priority keys
  only for workers with free capacity, while the scalar reference pays for
  the whole worker set, and that the op counting never changes placements;
* **caching regressions** — ``all_servers`` is built once at construction,
  and the fast constructors (``Task.prevalidated``, batched submits,
  vectorised P-state lookups, batched comfort rows) equal their reference
  counterparts exactly.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.middleware import MiddlewareConfig
from repro.core.resilience.config import ResilienceConfig
from repro.core.scheduling.base import SaturationPolicy
from repro.experiments.common import mid_month_start, small_city
from repro.hardware.server import Task
from repro.thermal import budget
from repro.thermal.comfort import ComfortTracker
from repro.thermal.fused import FusedCityThermal
from repro.thermal.surrogate import SurrogateConfig
from repro.workloads.edge import EdgeWorkloadConfig, EdgeWorkloadGenerator

DAY = 86400.0


# --------------------------------------------------------------------------- #
# differential fuzz
# --------------------------------------------------------------------------- #
def _random_configs(n: int, seed: int = 20260806):
    """Seeded-random city configurations (deterministic across runs)."""
    rng = random.Random(seed)
    configs = []
    for i in range(n):
        arch = rng.choice(["shared", "dedicated"])
        cfg = dict(
            seed=rng.randrange(10_000),
            start_time=mid_month_start(rng.choice([1, 4, 7, 10])),
            n_districts=rng.randint(1, 3),
            buildings_per_district=rng.randint(1, 3),
            rooms_per_building=rng.randint(2, 4),
            boilers_per_district=rng.choice([0, 0, 1]),
            architecture=arch,
            saturation_policy=rng.choice(list(SaturationPolicy)),
            enable_filler=rng.random() < 0.8,
            thermal_tick_s=rng.choice([300.0, 600.0]),
            resilience=ResilienceConfig() if rng.random() < 0.4 else None,
        )
        if arch == "dedicated":
            cfg["dedicated_per_cluster"] = 1
        configs.append(cfg)
    return configs


CONFIGS = _random_configs(6)


def _run(cfg_kwargs: dict, kernel: str, load_days: float = 0.08,
         rate_per_hour: float = 30.0):
    mw = small_city(kernel=kernel, **cfg_kwargs)
    t0 = mw.engine.now
    for bname in mw.buildings:
        gen = EdgeWorkloadGenerator(
            mw.rngs.stream(f"edge-{bname}"),
            source=bname,
            config=EdgeWorkloadConfig(rate_per_hour=rate_per_hour),
        )
        mw.inject(gen.generate(t0, t0 + load_days * DAY))
    mw.run_until(t0 + (load_days + 0.02) * DAY)
    return mw


def _signature(mw):
    """Kernel-independent output digest.

    Request ids come from a global counter shared by both runs of a
    differential pair, so the digest uses id-insensitive fields only.
    """
    comfort = mw.comfort.result()
    return {
        "edge_completed": sorted(
            (r.time, r.source, r.started_at, r.completed_at, r.executed_on)
            for r in mw.completed_edge()
        ),
        "edge_expired": sorted((r.time, r.source) for r in mw.expired_edge()),
        "cloud_completed": len(mw.completed_cloud()),
        "fleet_energy_j": mw.fleet_energy_j(),
        "cycles": mw.total_cycles_executed(),
        "filler_completed": mw.filler_completed,
        "events_executed": mw.engine.events_executed,
        "comfort": (comfort.hours_tracked, comfort.time_in_band, comfort.rmse_c,
                    comfort.mean_temp_c, comfort.cold_degree_hours,
                    comfort.overheat_degree_hours),
        "useful_heat_j": mw.ledger._useful_heat_j,
        "capacity_log": dict(mw.smartgrid.capacity_log),
        "energy_budget_log": dict(mw.smartgrid.energy_budget_log),
        "monthly_temps": mw.comfort.monthly_mean_temps(),
    }


@pytest.mark.parametrize("cfg", CONFIGS,
                         ids=[f"cfg{i}" for i in range(len(CONFIGS))])
def test_kernels_agree_on_random_configs(cfg):
    sig_scalar = _signature(_run(cfg, "scalar"))
    sig_vector = _signature(_run(cfg, "vector"))
    assert sig_scalar == sig_vector


# --------------------------------------------------------------------------- #
# surrogate tier: tolerance fuzz against the declared budget (DESIGN.md §2.18)
# --------------------------------------------------------------------------- #
def _surrogate_configs(n: int, seed: int = 20260807):
    """Seeded-random surrogate-eligible cities (see EXPERIMENTS.md).

    Resilience is off (churn materialises districts, which is covered by its
    own test) and every city has >= 2 districts so the aggregate model
    actually engages.
    """
    rng = random.Random(seed)
    configs = []
    for _ in range(n):
        arch = rng.choice(["shared", "dedicated"])
        cfg = dict(
            seed=rng.randrange(10_000),
            start_time=mid_month_start(rng.choice([1, 4, 10])),
            n_districts=rng.randint(2, 4),
            buildings_per_district=rng.randint(1, 2),
            rooms_per_building=rng.randint(2, 3),
            architecture=arch,
            saturation_policy=rng.choice(
                [SaturationPolicy.QUEUE, SaturationPolicy.PREEMPT]),
            enable_filler=True,
            thermal_tick_s=600.0,
        )
        if arch == "dedicated":
            cfg["dedicated_per_cluster"] = 1
        configs.append(cfg)
    return configs


SURROGATE_CONFIGS = _surrogate_configs(4)
SUR_TIER = SurrogateConfig(warmup_ticks=4, sample_districts=1)
SUR_TICKS = 20


def _run_tracked(cfg_kwargs: dict, kernel: str, load_buildings,
                 rate_per_hour: float = 30.0):
    """Run ``SUR_TICKS`` thermal ticks recording per-district mean temps.

    Edge load targets only ``load_buildings`` (the surrogate run's sample
    districts), so aggregate districts stay aggregated — the regime the
    tolerance budget is stated for.
    """
    kw = dict(cfg_kwargs)
    if kernel == "surrogate":
        kw["surrogate"] = SUR_TIER
    mw = small_city(kernel=kernel, **kw)
    t0 = mw.engine.now
    tick = mw.config.thermal_tick_s
    for bname in load_buildings:
        gen = EdgeWorkloadGenerator(
            mw.rngs.stream(f"edge-{bname}"),
            source=bname,
            config=EdgeWorkloadConfig(rate_per_hour=rate_per_hour),
        )
        mw.inject(gen.generate(t0, t0 + SUR_TICKS * tick))
    nd = mw.config.n_districts
    means = []
    for k in range(1, SUR_TICKS + 1):
        mw.run_until(t0 + k * tick + 1.0)
        grid = np.asarray(mw._fused_thermal.t_air).reshape(nd, -1)
        means.append(grid.mean(axis=1))
    return mw, np.asarray(means)


def _sample_buildings(cfg_kwargs: dict):
    """The surrogate run's sample districts' buildings for this config."""
    probe = small_city(kernel="surrogate",
                       **dict(cfg_kwargs, surrogate=SUR_TIER))
    return probe.surrogate.sample_districts, [
        f"district-{d}/building-{b}"
        for d in probe.surrogate.sample_districts
        for b in range(cfg_kwargs.get("buildings_per_district", 2))
    ]


@pytest.mark.parametrize("cfg", SURROGATE_CONFIGS,
                         ids=[f"sur{i}" for i in range(len(SURROGATE_CONFIGS))])
def test_surrogate_within_declared_budget(cfg):
    """Every budget metric is asserted against the constants in
    ``repro.thermal.budget`` — tightening the budget is a one-line diff
    there, and a silently drifting surrogate fails here."""
    _samples, load = _sample_buildings(cfg)
    mw_s, means_s = _run_tracked(cfg, "surrogate", load)
    mw_v, means_v = _run_tracked(cfg, "vector", load)
    assert mw_s.surrogate.switched
    assert mw_s.surrogate.agg_ids, "no aggregate district: budget test is vacuous"

    # metric 1: per-district time-mean air temperature
    dev_c = np.abs(means_s.mean(axis=0) - means_v.mean(axis=0))
    assert dev_c.max() <= budget.DISTRICT_MEAN_TEMP_TOL_C, dev_c

    # metric 2: comfort-violation rate (1 − time_in_band)
    viol_s = 1.0 - mw_s.comfort.result().time_in_band
    viol_v = 1.0 - mw_v.comfort.result().time_in_band
    assert abs(viol_s - viol_v) <= budget.COMFORT_VIOLATION_RATE_TOL

    # metric 3: fleet electrical energy (modelled replaces metered)
    e_s, e_v = mw_s.fleet_energy_j(), mw_v.fleet_energy_j()
    assert e_v > 0
    assert abs(e_s - e_v) / e_v <= budget.FLEET_ENERGY_REL_TOL


def test_surrogate_sample_district_byte_identical_to_vector():
    """Sample districts run the exact path end to end: their per-room
    temperature and regulator trajectories must equal the vector kernel's
    bit for bit, tick by tick — the exactness half of the budget contract."""
    cfg = dict(seed=29, start_time=mid_month_start(1), n_districts=3,
               buildings_per_district=2, rooms_per_building=3,
               saturation_policy=SaturationPolicy.QUEUE,
               thermal_tick_s=600.0)
    samples, load = _sample_buildings(cfg)
    rpd = cfg["buildings_per_district"] * cfg["rooms_per_building"]
    idx = np.concatenate([np.arange(d * rpd, (d + 1) * rpd) for d in samples])
    runs = {}
    for kernel in ("surrogate", "vector"):
        kw = dict(cfg, surrogate=SUR_TIER) if kernel == "surrogate" else cfg
        mw = small_city(kernel=kernel, **kw)
        t0 = mw.engine.now
        for bname in load:
            gen = EdgeWorkloadGenerator(
                mw.rngs.stream(f"edge-{bname}"),
                source=bname,
                config=EdgeWorkloadConfig(rate_per_hour=30.0),
            )
            mw.inject(gen.generate(t0, t0 + SUR_TICKS * 600.0))
        temps, pf = [], []
        for k in range(1, SUR_TICKS + 1):
            mw.run_until(t0 + k * 600.0 + 1.0)
            temps.append(np.asarray(mw._fused_thermal.t_air)[idx].copy())
            pf.append(np.asarray(mw._bank.power_fraction)[idx].copy())
        edge = sorted(
            (r.time, r.source, r.started_at, r.completed_at, r.executed_on)
            for r in mw.completed_edge()
        )
        runs[kernel] = (np.asarray(temps), np.asarray(pf), edge)
    assert np.array_equal(runs["surrogate"][0], runs["vector"][0])
    assert np.array_equal(runs["surrogate"][1], runs["vector"][1])
    assert runs["surrogate"][2] == runs["vector"][2]


def test_kernel_flag_reaches_surrogate_layer():
    sur = small_city(kernel="surrogate")
    assert sur.kernel == "surrogate"
    assert sur.engine.incremental_accounting
    assert all(s.incremental_scans for s in sur.schedulers.values())
    assert sur._bank is not None and sur._fused_thermal is not None
    assert sur.surrogate is not None
    assert small_city(kernel="vector").surrogate is None
    with pytest.raises(ValueError, match="kernel"):
        MiddlewareConfig(kernel="bogus")


def test_kernel_flag_reaches_every_layer():
    vec = small_city(kernel="vector")
    ref = small_city(kernel="scalar")
    assert vec.kernel == "vector" and ref.kernel == "scalar"
    assert vec.engine.incremental_accounting and not ref.engine.incremental_accounting
    assert all(s.incremental_scans for s in vec.schedulers.values())
    assert not any(s.incremental_scans for s in ref.schedulers.values())
    assert vec._bank is not None and ref._bank is None
    assert vec._fused_thermal is not None and ref._fused_thermal is None


# --------------------------------------------------------------------------- #
# perf-regression guard: per-tick scan work
# --------------------------------------------------------------------------- #
def test_placement_scans_cost_capacity_not_fleet():
    """Key evaluations: scalar pays O(workers), vector O(workers with room)."""
    cfg = dict(seed=11, start_time=mid_month_start(1),
               saturation_policy=SaturationPolicy.PREEMPT)
    runs = {}
    for kernel in ("scalar", "vector"):
        mw = _run(dict(cfg, n_districts=2), kernel)
        runs[kernel] = (
            sum(s.scan_key_evals for s in mw.schedulers.values()),
            _signature(mw),
        )
    scalar_evals, scalar_sig = runs["scalar"]
    vector_evals, vector_sig = runs["vector"]
    assert scalar_sig == vector_sig        # op counting never changes outputs
    requests = len(scalar_sig["edge_completed"]) + len(scalar_sig["edge_expired"])
    assert requests > 0 and scalar_evals > 0
    # the scalar reference sorts the full eligible worker set per scan; the
    # vector path touches only workers with free capacity — with the filler
    # keeping wanted servers saturated, that is a strict, material saving
    assert vector_evals < scalar_evals


def test_best_worker_probes_only_workers_with_capacity():
    mw = small_city(kernel="vector", seed=3)
    sched = next(iter(mw.schedulers.values()))
    workers = list(sched.edge_workers())
    assert len(workers) >= 3
    # saturate all but one worker
    open_worker = workers[-1]
    for w in workers[:-1]:
        while w.free_cores > 0:
            assert w.submit(Task(f"fill-{w.name}-{w.free_cores}", 1e9, cores=1))
    before = sched.scan_key_evals
    chosen = sched._best_worker(workers, 1)
    probes = sched.scan_key_evals - before
    assert chosen is open_worker
    assert probes == 1                      # O(workers with capacity)
    before = sched.scan_key_evals
    ordered = sched._ordered(workers)
    assert sched.scan_key_evals - before == len(workers)   # O(fleet) reference
    # and the incremental choice matches the sorted reference's first fit
    assert next(w for w in ordered if w.free_cores >= 1) is chosen


# --------------------------------------------------------------------------- #
# caching regressions
# --------------------------------------------------------------------------- #
def test_all_servers_cached_at_construction():
    mw = small_city()
    first = mw.all_servers
    second = mw.all_servers
    assert first == second
    assert first is not second              # callers get private copies
    assert first is not mw._all_servers
    assert mw._all_servers is mw._all_servers  # no rebuild per access
    n_qrads = (mw.config.n_districts * mw.config.buildings_per_district
               * mw.config.rooms_per_building)
    assert len(first) == n_qrads + len(mw.boilers)
    # aggregate accessors walk the same cached list
    assert mw.fleet_energy_j() == sum(s.energy_j for s in first)
    assert mw.total_cycles_executed() == sum(s.cycles_executed for s in first)


def test_task_prevalidated_matches_reference_constructor():
    def done(t, now):
        return None

    ref = Task(task_id="t-1", work_cycles=3.7e9, cores=2, on_complete=done,
               metadata={"kind": "filler"})
    fast = Task.prevalidated("t-1", 3.7e9, 2, done, {"kind": "filler"})
    for f in ("task_id", "work_cycles", "cores", "on_complete", "metadata",
              "state", "remaining_cycles", "submitted_at", "completed_at",
              "server_name"):
        assert getattr(ref, f) == getattr(fast, f), f


def test_comfort_add_rows_equals_sequential_adds():
    rng = np.random.default_rng(42)
    a, b = ComfortTracker(band_c=1.0), ComfortTracker(band_c=1.0)
    for _ in range(20):
        rows, rooms = int(rng.integers(1, 5)), int(rng.integers(1, 6))
        temps = rng.uniform(10, 30, size=(rows, rooms))
        sets = rng.uniform(18, 23, size=(rows, rooms))
        month = int(rng.integers(1, 13))
        for i in range(rows):
            a.add(600.0, temps[i], sets[i], month=month)
        b.add_rows(600.0, temps, sets, month=month)
    assert a.result() == b.result()
    assert a.monthly_mean_temps() == b.monthly_mean_temps()


def test_fused_thermal_bitwise_equals_per_building_steps():
    mk = lambda: small_city(kernel="scalar", seed=5, n_districts=2)  # noqa: E731
    ref, fus = mk(), mk()
    fused = FusedCityThermal(list(fus.buildings.values()))
    assert fused.compatible
    now = ref.engine.now
    for k in range(6):
        now += 600.0
        for b in ref.buildings.values():
            b.step(now, 600.0)
        fused.step(now, 600.0)
    for (bn, b_ref), b_fus in zip(ref.buildings.items(), fus.buildings.values()):
        assert np.array_equal(b_ref.network.t_air, b_fus.network.t_air), bn
        assert np.array_equal(b_ref.network.t_env, b_fus.network.t_env), bn


def test_shared_ladder_caps_match_per_server_lookup():
    mw = small_city(kernel="vector", seed=9)
    sg = mw.smartgrid
    assert sg._shared_scales is not None
    rng = np.random.default_rng(7)
    budgets = np.concatenate([
        rng.uniform(0.0, 1.2, size=200),
        np.asarray(sg._shared_scales),          # exact boundaries
        np.asarray(sg._shared_scales) - 1e-12,
    ])
    ladder = sg._fleet[0].server.spec.ladder
    caps = np.maximum(
        np.searchsorted(sg._shared_scales, budgets + 1e-12, side="right") - 1, 0
    ).tolist()
    expected = [ladder.index_for_power_budget(float(b)) for b in budgets]
    assert caps == expected
