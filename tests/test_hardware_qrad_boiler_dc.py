"""Tests for Q.rad / e-radiator / boiler / datacenter hardware models."""

import pytest

from repro.hardware.boiler import ASPERITAS_AIC24, STIMERGY_SMALL, DigitalBoiler
from repro.hardware.datacenter import Datacenter, DatacenterNode
from repro.hardware.qrad import (
    CRYPTO_SPEC,
    ERADIATOR_SPEC,
    QRAD_SPEC,
    CryptoHeater,
    ERadiator,
    HeatDumpMode,
    QRad,
)
from repro.hardware.server import Task
from repro.sim.engine import Engine
from repro.thermal.heat_island import HeatIslandLedger, OutdoorHeatSource
from repro.thermal.hydronics import DrawProfile, WaterLoop, WaterLoopConfig

GHZ = 1e9


@pytest.fixture()
def engine():
    return Engine()


# --------------------------------------------------------------------------- #
# Q.rad family
# --------------------------------------------------------------------------- #
def test_qrad_published_envelope(engine):
    q = QRad("q1", engine)
    assert q.spec.p_max_w == 500.0  # the paper's 500 W
    assert q.n_cores == 16
    q.submit(Task("full", 1e15, cores=16))
    assert q.power_w() == pytest.approx(500.0)
    assert q.heat_output_w() == pytest.approx(500.0)  # free cooling: all to room


def test_eradiator_envelope_and_dump_mode(engine):
    e = ERadiator("e1", engine)
    assert e.spec.p_max_w == 1000.0  # the paper's 1000 W
    e.submit(Task("full", 1e15, cores=e.n_cores))
    p = e.power_w()
    assert e.heat_output_w() == pytest.approx(p)
    assert e.outdoor_heat_w() == 0.0
    e.set_dump_mode(HeatDumpMode.OUTDOOR)
    assert e.heat_output_w() == 0.0
    assert e.outdoor_heat_w() == pytest.approx(p)


def test_crypto_heater_envelope(engine):
    c = CryptoHeater("c1", engine)
    assert c.spec.p_max_w == 650.0  # the paper's 650 W
    assert c.n_cores == 2  # 2 GPUs


def test_specs_are_distinct():
    assert QRAD_SPEC.model != ERADIATOR_SPEC.model != CRYPTO_SPEC.model


# --------------------------------------------------------------------------- #
# digital boiler
# --------------------------------------------------------------------------- #
def test_boiler_published_envelopes():
    assert ASPERITAS_AIC24.server.n_cores == 200
    assert ASPERITAS_AIC24.server.p_max_w == 20000.0
    assert STIMERGY_SMALL.server.n_cores == 40
    assert STIMERGY_SMALL.server.p_max_w == 4000.0


def test_boiler_heats_tank(engine):
    loop = WaterLoop(WaterLoopConfig(), t_init_c=40.0)
    b = DigitalBoiler("b1", engine, loop, spec=STIMERGY_SMALL,
                      draw_profile=DrawProfile(daily_litres=0.0))
    b.submit(Task("j", 1e16, cores=40))
    engine.run_until(3600.0)
    useful, dumped = b.thermal_step(engine.now, 3600.0, hour_of_day=3.0)
    assert useful > 0
    assert dumped == 0.0
    assert loop.t_tank > 40.0


def test_boiler_overflow_books_heat_island(engine):
    loop = WaterLoop(WaterLoopConfig(t_max_c=75.0), t_init_c=74.99)
    ledger = HeatIslandLedger()
    b = DigitalBoiler("b1", engine, loop, spec=ASPERITAS_AIC24,
                      draw_profile=DrawProfile(daily_litres=0.0), ledger=ledger)
    b.submit(Task("j", 1e18, cores=200))
    engine.run_until(3600.0)
    b.thermal_step(engine.now, 3600.0, hour_of_day=3.0)
    assert ledger.outdoor_j(OutdoorHeatSource.BOILER_OVERFLOW) > 0
    assert b.dumped_heat_j > 0


def test_boiler_heat_demand_signal(engine):
    loop = WaterLoop(WaterLoopConfig(), t_init_c=40.0)
    b = DigitalBoiler("b1", engine, loop, spec=STIMERGY_SMALL)
    assert b.heat_demand_w() > 0  # cold tank wants heat


# --------------------------------------------------------------------------- #
# datacenter
# --------------------------------------------------------------------------- #
def test_dc_node_pue(engine):
    n = DatacenterNode("n0", engine, cooling_overhead=0.35, fixed_overhead_w=0.0)
    n.submit(Task("j", 1e15, cores=n.n_cores))
    assert n.pue() == pytest.approx(1.35)
    assert n.outdoor_heat_w() == pytest.approx(n.power_w())
    assert n.heat_output_w() == 0.0  # no heat reaches any room


def test_dc_node_idle_draws_nothing_total(engine):
    n = DatacenterNode("n0", engine)
    assert n.it_power_w() > 0  # IT idle power exists
    # total power model returns 0 only when IT is 0 (powered off)
    n.power_off()
    assert n.power_w() == 0.0


def test_dc_invalid_params(engine):
    with pytest.raises(ValueError):
        DatacenterNode("n", engine, cooling_overhead=-0.1)
    with pytest.raises(ValueError):
        Datacenter("dc", 0, engine)


def test_datacenter_places_and_queues(engine):
    dc = Datacenter("dc", n_nodes=2, engine=engine)
    per_node = dc.nodes[0].n_cores
    done = []
    # fill both nodes
    dc.submit(Task("a", 10 * GHZ * per_node, cores=per_node,
                   on_complete=lambda t, now: done.append((t.task_id, now))))
    dc.submit(Task("b", 10 * GHZ * per_node, cores=per_node,
                   on_complete=lambda t, now: done.append((t.task_id, now))))
    dc.submit(Task("c", GHZ, cores=1,
                   on_complete=lambda t, now: done.append((t.task_id, now))))
    assert dc.queue_depth == 1
    assert dc.free_cores == 0
    engine.run_until(1000.0)
    assert dc.queue_depth == 0
    assert {x[0] for x in done} == {"a", "b", "c"}
    # queued task finished only after a node freed up
    t_c = [x[1] for x in done if x[0] == "c"][0]
    t_a = [x[1] for x in done if x[0] == "a"][0]
    assert t_c > t_a


def test_datacenter_energy_pue(engine):
    dc = Datacenter("dc", n_nodes=1, engine=engine, cooling_overhead=0.35,
                    fixed_overhead_w=0.0)
    dc.submit(Task("j", 1e12, cores=dc.nodes[0].n_cores))
    engine.run_until(10.0)
    pue = dc.energy_pue()
    assert 1.3 < pue < 1.4


def test_datacenter_heat_accounting(engine):
    ledger = HeatIslandLedger()
    dc = Datacenter("dc", n_nodes=1, engine=engine, ledger=ledger)
    dc.submit(Task("j", 1e15, cores=4))
    dc.account_heat(3600.0)
    assert ledger.outdoor_j(OutdoorHeatSource.DC_COOLING) > 0
