"""Unit and property tests for the simulation calendar."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.calendar import (
    DAY,
    HEATING_SEASON_MONTHS,
    HOUR,
    MONTH_LENGTHS,
    YEAR,
    SimCalendar,
    month_name,
)

CAL = SimCalendar()


def test_year_is_365_days():
    assert YEAR == 365 * DAY
    assert sum(MONTH_LENGTHS) == 365


def test_epoch_is_january_first():
    assert CAL.month(0.0) == 1
    assert CAL.day_of_month(0.0) == 1
    assert CAL.hour_of_day(0.0) == 0.0


def test_month_boundaries():
    assert CAL.month(CAL.month_start(2)) == 2
    assert CAL.month(CAL.month_start(2) - 1.0) == 1
    assert CAL.month(CAL.month_start(12)) == 12


def test_wraps_across_year():
    t = YEAR + 10 * DAY
    assert CAL.month(t) == 1
    assert CAL.day_of_month(t) == 11


def test_hour_of_day():
    t = 5 * DAY + 13.5 * HOUR
    assert CAL.hour_of_day(t) == pytest.approx(13.5)


def test_day_of_week_and_weekend():
    # Epoch day is a Monday.
    assert CAL.day_of_week(0.0) == 0
    assert not CAL.is_weekend(0.0)
    assert CAL.is_weekend(5 * DAY)
    assert CAL.is_weekend(6 * DAY)
    assert not CAL.is_weekend(7 * DAY)


def test_business_hours():
    monday_10am = 10 * HOUR
    monday_8am = 8 * HOUR
    saturday_10am = 5 * DAY + 10 * HOUR
    assert CAL.is_business_hours(monday_10am)
    assert not CAL.is_business_hours(monday_8am)
    assert not CAL.is_business_hours(saturday_10am)


def test_month_name():
    assert month_name(1) == "Jan"
    assert month_name(11) == "Nov"
    with pytest.raises(ValueError):
        month_name(0)
    with pytest.raises(ValueError):
        month_name(13)


def test_invalid_month_args():
    with pytest.raises(ValueError):
        CAL.month_start(0)
    with pytest.raises(ValueError):
        CAL.month_length(13)


def test_heating_season_iteration_is_monotone_and_ordered():
    intervals = list(CAL.iter_heating_season())
    months = [m for m, _, _ in intervals]
    assert months == list(HEATING_SEASON_MONTHS)
    for (_, s0, e0), (_, s1, _) in zip(intervals, intervals[1:]):
        assert e0 == pytest.approx(s1)
        assert s0 < e0


def test_heating_season_membership():
    assert CAL.in_heating_season(CAL.month_start(12) + DAY)
    assert CAL.in_heating_season(CAL.month_start(3) + DAY)
    assert not CAL.in_heating_season(CAL.month_start(7) + DAY)


@given(st.floats(min_value=0.0, max_value=10 * YEAR, allow_nan=False))
def test_property_month_consistent_with_day(t):
    m = CAL.month(t)
    assert 1 <= m <= 12
    dom = CAL.day_of_month(t)
    assert 1 <= dom <= MONTH_LENGTHS[m - 1]


@given(st.floats(min_value=0.0, max_value=10 * YEAR, allow_nan=False))
def test_property_season_fraction_in_unit_interval(t):
    f = CAL.season_fraction(t)
    assert 0.0 <= f < 1.0


@given(st.integers(min_value=1, max_value=12))
def test_property_month_start_roundtrip(m):
    t = CAL.month_start(m)
    assert CAL.month(t) == m
    assert CAL.day_of_month(t) == 1
