"""BackendStats bookkeeping and deterministic runner node spans.

The orchestration-plane observability contract (DESIGN.md §2.19) splits
runner telemetry in two:

* **deterministic spans in the trace** — every computed node of a traced
  dag sweep gets exactly one ``runner.node`` record (ts = execution
  ordinal, never a wall time) plus one ``runner.sweep`` summary, and the
  runner-kind records are identical at any jobs count;
* **wall-clock telemetry in BackendStats** — timeline rows, queue/steal
  counters and heartbeat bookkeeping describe *how* one particular
  execution went, survive a ``to_dict`` round-trip for
  ``RunReport.to_dict()``, and stay out of the trace entirely.

The fault-injection tests reuse the kill-a-worker cells from
``test_runner_graph`` to check the counters tell the true story: one
death, one retry, one respawn, heartbeats fresh across the respawn.
"""

from __future__ import annotations

import time

import pytest

from repro import obs as O
from repro.experiments import e14_scale
from repro.runner import SweepRunner
from repro.runner.backend import BackendStats, InlineBackend, ProcessBackend
from repro.runner.graph import TaskGraph, TaskNode

pytestmark = pytest.mark.dag


def _fanout_graph() -> TaskGraph:
    """One shared prefix feeding three points (cells from test_runner_graph)."""
    return TaskGraph(
        [TaskNode("S", "shared", "tests.test_runner_graph:_double",
                  params=(("x", 21),), kind="prefix")]
        + [TaskNode("S", f"point-{i}", "tests.test_runner_graph:_add",
                    params=(("bias", i),), needs=(("a", "shared"),))
           for i in range(3)]
    )


def _traced_sweep(jobs: int):
    tracer = O.Tracer()
    with O.obs_session(O.Observability(tracer=tracer)) as obs:
        report = SweepRunner(jobs=jobs, backend="dag", obs=obs).run_spec(
            e14_scale.SWEEP)
    return report, [r.to_dict() for r in tracer.iter_records()]


# --------------------------------------------------------------------------- #
# deterministic runner spans in the trace
# --------------------------------------------------------------------------- #
def test_every_computed_node_gets_exactly_one_span():
    """100% span coverage: one runner.node per computed node, ordinal ts."""
    report, trace = _traced_sweep(jobs=1)
    spans = [r for r in trace if r["name"] == "runner.node"]
    assert len(spans) == report.computed_nodes > 0
    assert [s["args"]["seq"] for s in spans] == list(range(len(spans)))
    assert [s["ts"] for s in spans] == [float(i) for i in range(len(spans))]
    assert all(s["kind"] == "runner" for s in spans)
    assert all(s["args"]["status"] == "computed" for s in spans)
    assert all(s["args"]["experiment"] == "E14" for s in spans)
    # distinct nodes — no span is double-counted toward coverage
    assert len({s["args"]["node"] for s in spans}) == len(spans)

    summaries = [r for r in trace if r["name"] == "runner.sweep"]
    assert len(summaries) == 1
    assert summaries[0]["args"]["executed"] == report.computed_nodes
    assert summaries[0]["args"]["points"] == report.computed
    assert summaries[0]["args"]["graph_nodes"] == report.nodes


def test_runner_spans_identical_across_jobs_counts():
    """The runner-kind record stream is a pure function of the graph."""
    report1, trace1 = _traced_sweep(jobs=1)
    report4, trace4 = _traced_sweep(jobs=4)
    runner1 = [r for r in trace1 if r["kind"] == "runner"]
    runner4 = [r for r in trace4 if r["kind"] == "runner"]
    assert runner1 == runner4
    node_spans = [r for r in runner4 if r["name"] == "runner.node"]
    assert len(node_spans) == report4.computed_nodes == report1.computed_nodes


def test_obs_off_and_kind_filtered_runs_stay_span_free():
    """Spans are gated: obs-off costs nothing, allowlists drop runner kind."""
    graph = _fanout_graph()
    stats = InlineBackend(obs=O.Observability()).execute(
        graph, graph.node_ids, {}, lambda nid, v: None)
    assert stats.executed == len(graph)

    tracer = O.Tracer(kinds=["request"])     # runner kind not in allowlist
    stats = InlineBackend(obs=O.Observability(tracer=tracer)).execute(
        graph, graph.node_ids, {}, lambda nid, v: None)
    assert stats.executed == len(graph)
    assert all(r.kind != "runner" for r in tracer.iter_records())


# --------------------------------------------------------------------------- #
# wall-clock telemetry: timeline rows and counters
# --------------------------------------------------------------------------- #
def test_inline_backend_timeline_is_graph_ordered():
    graph = _fanout_graph()
    values: dict = {}
    stats = InlineBackend().execute(graph, graph.node_ids, values,
                                    lambda nid, v: None)
    assert values["shared"] == 42
    assert values["point-2"] == 44
    assert stats.executed == 4
    assert stats.nodes_per_worker == {0: 4}
    assert stats.queue_depth_peak == 1
    assert [row["node"] for row in stats.timeline] == graph.order()
    assert [row["kind"] for row in stats.timeline] == \
        ["prefix", "point", "point", "point"]
    for row in stats.timeline:
        assert row["worker"] == 0 and row["attempts"] == 1
        assert 0.0 <= row["start_s"] <= row["done_s"]
        assert row["wall_s"] >= 0.0


def test_process_backend_timeline_records_worker_lifecycle():
    graph = _fanout_graph()
    backend = ProcessBackend(jobs=2, chunk_size=1, poll_s=0.05)
    values: dict = {}
    stats = backend.execute(graph, graph.node_ids, values,
                            lambda nid, v: None)
    assert values["point-1"] == 43
    assert stats.executed == 4
    assert stats.chunks_dispatched >= 4          # chunk_size=1: one per node
    assert stats.chunk_steals >= 4               # every chunk claim-acked
    assert stats.queue_depth_peak >= 1
    assert sum(stats.nodes_per_worker.values()) == stats.executed
    # timeline is finalized in deterministic graph order, whatever the
    # completion interleaving was
    assert [row["node"] for row in stats.timeline] == graph.order()
    for row in stats.timeline:
        assert row["attempts"] == 1
        assert row["worker"] in stats.nodes_per_worker
        assert row["enqueue_s"] <= row["claim_s"] <= row["done_s"]
        assert row["start_s"] <= row["done_s"]
        assert row["wall_s"] >= 0.0


def test_deterministic_stats_fields_match_across_jobs():
    """executed and the timeline's (node, kind) sequence are jobs-invariant."""
    reports = {jobs: SweepRunner(jobs=jobs, backend="dag").run_spec(
        e14_scale.SWEEP) for jobs in (1, 4)}
    s1, s4 = reports[1].backend_stats, reports[4].backend_stats
    assert s1 is not None and s4 is not None
    assert s1.executed == s4.executed == reports[4].computed_nodes
    assert [(r["node"], r["kind"]) for r in s1.timeline] == \
        [(r["node"], r["kind"]) for r in s4.timeline]
    assert sum(s4.nodes_per_worker.values()) == s4.executed
    assert s4.duplicate_results == 0
    assert reports[1].result.text == reports[4].result.text


# --------------------------------------------------------------------------- #
# fault injection: counters and heartbeats under a worker kill
# --------------------------------------------------------------------------- #
def test_injected_kill_counters_and_heartbeat_freshness(tmp_path):
    t_start = time.time()
    graph = TaskGraph(
        [TaskNode("F", "fragile", "tests.test_runner_graph:_fragile_cell",
                  params=(("tag", "fragile"), ("flag_dir", str(tmp_path))))]
        + [TaskNode("F", f"plain-{i}", "tests.test_runner_graph:_add",
                    params=(("a", i),)) for i in range(3)]
    )
    backend = ProcessBackend(jobs=2, chunk_size=1, poll_s=0.05,
                             stall_timeout_s=3.0)
    values: dict = {}
    stats = backend.execute(graph, graph.node_ids, values,
                            lambda nid, v: None)
    t_end = time.time()

    assert values["fragile"] == "ok-fragile"
    assert stats.executed == 4
    assert stats.worker_deaths == 1
    assert stats.retried_nodes == 1
    assert stats.respawned_workers == 1
    assert stats.chunks_dispatched >= 5          # 4 chunks + the re-enqueue
    assert stats.chunk_steals >= 4
    assert stats.heartbeat_max_staleness_s >= 0.0

    fragile_row = next(r for r in stats.timeline if r["node"] == "fragile")
    assert fragile_row["attempts"] >= 2          # killed once, retried clean

    # heartbeat monotonicity across the respawn: the replacement slot shows
    # up in the bookkeeping, and every recorded beat — including the dead
    # worker's frozen last one — falls inside this execution's wall window
    assert set(stats.last_heartbeat) >= {0, 1, 2}
    for beat in stats.last_heartbeat.values():
        assert t_start <= beat <= t_end
    # a live worker beat after the death was detected
    assert max(stats.last_heartbeat.values()) >= \
        min(stats.last_heartbeat.values())


# --------------------------------------------------------------------------- #
# serialization: BackendStats round-trips for RunReport.to_dict()
# --------------------------------------------------------------------------- #
def test_backend_stats_round_trip_from_real_run():
    graph = _fanout_graph()
    stats = InlineBackend().execute(graph, graph.node_ids, {},
                                    lambda nid, v: None)
    d = stats.to_dict()
    assert BackendStats.from_dict(d).to_dict() == d
    assert d["nodes_per_worker"] == {"0": 4}     # JSON-safe string keys


def test_backend_stats_round_trip_all_fields():
    stats = BackendStats(
        executed=7, chunks_dispatched=5, chunk_steals=6, queue_depth_peak=3,
        worker_deaths=1, retried_nodes=1, respawned_workers=1,
        duplicate_results=2, heartbeat_max_staleness_s=0.125,
        nodes_per_worker={0: 4, 3: 3}, last_heartbeat={0: 12.5, 3: 13.75},
        timeline=[{"node": "a", "kind": "point", "worker": 3, "attempts": 2,
                   "enqueue_s": 0.0, "claim_s": 0.1, "start_s": 0.1,
                   "done_s": 0.4, "wall_s": 0.3}],
    )
    restored = BackendStats.from_dict(stats.to_dict())
    assert restored == stats
    assert restored.to_dict() == stats.to_dict()
