"""Property tests for the surrogate tier's aggregate model + controller.

The differential fuzz in ``test_kernel_equivalence.py`` pins the surrogate
against the vector kernel's outputs; this module pins the *internal*
contracts of DESIGN.md §2.18: the aggregate 2R2C's energy balance, its
monotone weather response, the calibration fit, lazy zoom-in semantics
(read-only, byte-exact replay), materialise-on-demand triggers, quiescing,
RNG stream isolation and rerun determinism.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.faults import FaultInjector
from repro.core.requests import EdgeRequest, HeatingRequest
from repro.experiments.common import mid_month_start, small_city
from repro.thermal import budget
from repro.thermal.surrogate import (
    DistrictAggregateModel,
    SurrogateConfig,
    fit_power_map,
)

DAY = 86400.0
TICK = 600.0
SUR = SurrogateConfig(warmup_ticks=4, sample_districts=1, checkpoint_every=4)


def _city(**overrides):
    kw = dict(kernel="surrogate", seed=11, n_districts=4,
              start_time=mid_month_start(1), surrogate=SUR)
    kw.update(overrides)
    return small_city(**kw)


def _run_ticks(mw, n):
    mw.run_until(mw.engine.now + n * TICK)
    return mw


# --------------------------------------------------------------------------- #
# config + calibration fit
# --------------------------------------------------------------------------- #
def test_surrogate_config_validation():
    with pytest.raises(ValueError, match="warmup"):
        SurrogateConfig(warmup_ticks=1)
    with pytest.raises(ValueError, match="sample"):
        SurrogateConfig(sample_districts=-1)
    with pytest.raises(ValueError, match="checkpoint"):
        SurrogateConfig(checkpoint_every=0)
    with pytest.raises(ValueError, match="threshold"):
        SurrogateConfig(slo_zoom_threshold_c=0.0)


def test_fit_power_map_recovers_linear_response():
    rng = np.random.default_rng(5)
    for _ in range(20):
        a, b = float(rng.uniform(50, 600)), float(rng.uniform(0, 50))
        x = rng.uniform(0.1, 1.0, size=12)
        got_a, got_b = fit_power_map(x, a * x + b)
        assert got_a == pytest.approx(a, rel=1e-9)
        assert got_b == pytest.approx(b, abs=1e-6)


def test_fit_power_map_degenerate_windows():
    # constant command: proportional map (still responds to PI output)
    a, b = fit_power_map([0.5, 0.5, 0.5], [100.0, 100.0, 100.0])
    assert (a, b) == (200.0, 0.0)
    # dead window: predict the (zero) mean
    a, b = fit_power_map([0.0, 0.0], [0.0, 0.0])
    assert (a, b) == (0.0, 0.0)


def test_surrogate_requires_homogeneous_fleet():
    from repro.thermal.surrogate import SurrogateController

    mw = small_city(kernel="vector", seed=3)
    mw._fused_thermal.c_air[0] *= 2.0
    with pytest.raises(ValueError, match="homogeneous"):
        SurrogateController(mw, SUR)


# --------------------------------------------------------------------------- #
# aggregate-model properties
# --------------------------------------------------------------------------- #
def _random_model(rng):
    return DistrictAggregateModel(
        c_air=float(rng.uniform(1e6, 1e7)),
        c_env=float(rng.uniform(5e6, 5e7)),
        g_ie=float(rng.uniform(100, 500)),
        g_ea=float(rng.uniform(20, 100)),
        g_inf=float(rng.uniform(10, 80)),
        dt_max=60.0,
    )


def test_energy_balance_residual_bounded_per_tick():
    """c_air·Δt_air + c_env·Δt_env equals the external flux to round-off:
    the residual stays inside the budget's relative bound every tick."""
    rng = np.random.default_rng(17)
    for _ in range(50):
        m = _random_model(rng)
        ta = np.array([float(rng.uniform(12, 26))])
        te = np.array([float(rng.uniform(8, 24))])
        t_out = float(rng.uniform(-10, 20))
        p_heat = np.array([float(rng.uniform(0, 500))])
        p_gain, p_solar = float(rng.uniform(0, 200)), float(rng.uniform(0, 300))
        for _tick in range(5):
            ta1, te1, flux = m.step_with_flux(ta, te, TICK, t_out, p_heat,
                                              p_gain, p_solar)
            residual = (m.c_air * (ta1[0] - ta[0])
                        + m.c_env * (te1[0] - te[0]) - flux[0])
            scale = abs(float(flux[0])) + m.c_air + m.c_env
            assert abs(residual) <= budget.AGGREGATE_ENERGY_RESIDUAL_REL * scale
            ta, te = ta1, te1


def test_monotone_response_to_weather_steps():
    """A warmer outdoor step never cools the aggregate state (and vice
    versa): the district node responds monotonically to weather overrides."""
    rng = np.random.default_rng(23)
    for _ in range(30):
        m = _random_model(rng)
        ta0 = np.array([float(rng.uniform(14, 24))])
        te0 = np.array([float(rng.uniform(10, 22))])
        p_heat = np.array([float(rng.uniform(0, 400))])
        t_outs = sorted(rng.uniform(-15, 25, size=4))
        prev_ta, prev_te = None, None
        for t_out in t_outs:
            ta, te = ta0, te0
            for _tick in range(6):
                ta, te = m.step(ta, te, TICK, float(t_out), p_heat, 50.0, 0.0)
            if prev_ta is not None:
                assert ta[0] >= prev_ta and te[0] >= prev_te
            prev_ta, prev_te = ta[0], te[0]


# --------------------------------------------------------------------------- #
# zoom-in: exact replay, read-only
# --------------------------------------------------------------------------- #
def test_replay_byte_identical_to_recorded_trajectory():
    mw = _run_ticks(_city(), 18)        # past several checkpoints
    sur = mw.surrogate
    assert sur.switched and sur.agg_ids
    for d in sur.agg_ids:
        assert len(sur._checkpoints[d]) > 1      # replay starts mid-history
        assert sur.replay(d) == sur.recorded_trajectory(d)


def test_zoom_round_trip_leaves_aggregate_state_unchanged():
    mw = _run_ticks(_city(), 14)        # last checkpoint mid-history
    sur = mw.surrogate
    d = sur.agg_ids[0]

    def snapshot():
        return (
            sur._t_air_bar.copy(), sur._t_env_bar.copy(), sur._int_bar.copy(),
            sur._u_bar.copy(), sur._sbar.copy(),
            np.asarray(mw._fused_thermal.t_air).copy(),
            np.asarray(mw._fused_thermal.t_env).copy(),
            np.asarray(mw._bank._integral).copy(),
            np.asarray(mw._bank._power_fraction).copy(),
            list(sur.agg_ids), {k: len(v) for k, v in sur._heat_hist.items()},
        )

    before = snapshot()
    zoom = sur.zoom_in(d)
    rooms = zoom.room_trajectory()
    assert rooms.shape[1] == sur.rooms_per_district
    # reconstructed rooms = replayed mean + frozen offsets, exactly
    agg = zoom.aggregate_trajectory()
    assert np.array_equal(rooms[-1], agg[-1][0] + sur.delta_air(d))
    after = snapshot()
    for b, a in zip(before, after):
        if isinstance(b, np.ndarray):
            assert np.array_equal(b, a)
        else:
            assert b == a


def test_zoom_rejects_never_aggregated_district():
    mw = _run_ticks(_city(), 8)
    sample = mw.surrogate.sample_districts[0]
    with pytest.raises(ValueError, match="never aggregated"):
        mw.surrogate.zoom_in(sample)


# --------------------------------------------------------------------------- #
# materialise-on-demand + quiescing
# --------------------------------------------------------------------------- #
def test_quiesced_districts_power_off_and_reject_filler():
    mw = _run_ticks(_city(), 10)
    sur = mw.surrogate
    assert sur.switched
    masked = set()
    for d in sur.agg_ids:
        sl = sur._d_slice(d)
        for i in range(sl.start, sl.stop):
            server, _ = mw._bank_entries[i]
            assert not server.enabled and server.free_cores == 0
            masked.add(server.name)
    assert masked
    assert masked.isdisjoint(s.name for s in mw.smartgrid.heat_wanted_servers())


def test_edge_request_materialises_district():
    mw = _run_ticks(_city(), 8)
    sur = mw.surrogate
    d = sur.agg_ids[0]
    mw.submit_edge(EdgeRequest(request_id="zoom-e1",
                               source=f"district-{d}/building-0",
                               cycles=1e9, deadline_s=30.0,
                               time=mw.engine.now))
    assert d in sur.live and d not in sur.agg_ids
    assert [m[1:] for m in sur.materialised] == [(d, "edge")]
    sl = sur._d_slice(d)
    servers = [mw._bank_entries[i][0] for i in range(sl.start, sl.stop)]
    assert any(s.enabled for s in servers)   # re-actuated immediately
    _run_ticks(mw, 4)
    assert len(mw.completed_edge()) == 1


def test_churn_fault_materialises_district():
    mw = _run_ticks(_city(), 8)
    sur = mw.surrogate
    d = sur.agg_ids[-1]
    FaultInjector(mw).crash_server(f"district-{d}/building-0/qrad-0")
    assert d in sur.live
    assert [m[1:] for m in sur.materialised] == [(d, "churn")]
    _run_ticks(mw, 4)                        # keeps running after the crash


def test_slo_drift_materialises_district():
    mw = _run_ticks(_city(), 8)
    sur = mw.surrogate
    d = sur.agg_ids[0]
    rooms = [r.name for r in mw.buildings[f"district-{d}/building-0"].rooms]
    mw.submit_heating(HeatingRequest(request_id="h1", rooms=rooms,
                                     target_temp_c=28.0, time=mw.engine.now))
    _run_ticks(mw, 2)                        # the SLO check runs on the tick
    assert d in sur.live
    assert any(m[1] == d and m[2] == "slo" for m in sur.materialised)


# --------------------------------------------------------------------------- #
# determinism + stream isolation
# --------------------------------------------------------------------------- #
def test_calibration_stream_is_isolated():
    """Enabling the surrogate must not perturb any other stream: the warm-up
    sample draw comes from the dedicated ``surrogate-calibration`` stream,
    whose existence is invisible to every other name's state."""
    vec = small_city(kernel="vector", seed=77)
    sur = small_city(kernel="surrogate", seed=77, surrogate=SUR)
    vec_states = vec.rngs.stream_states()
    sur_states = sur.rngs.stream_states()
    assert "surrogate-calibration" in sur_states
    assert "surrogate-calibration" not in vec_states
    del sur_states["surrogate-calibration"]
    assert sur_states == vec_states


def test_surrogate_rerun_is_byte_identical():
    def run():
        mw = _run_ticks(_city(), 16)
        sur = mw.surrogate
        c = mw.comfort.result()
        return (
            np.asarray(mw._fused_thermal.t_air).tobytes(),
            np.asarray(mw._bank.power_fraction).tobytes(),
            mw.fleet_energy_j(), sur.modeled_energy_j,
            (c.hours_tracked, c.time_in_band, c.rmse_c, c.mean_temp_c),
            sur.sample_districts, list(sur.agg_ids), sur.materialised,
            {d: sur._heat_hist[d] for d in sur._heat_hist},
        )

    assert run() == run()


def test_modeled_energy_enters_fleet_total():
    mw = _run_ticks(_city(), 14)
    sur = mw.surrogate
    assert sur.modeled_energy_j > 0
    servers = mw.all_servers
    for s in servers:
        s.sync()
    metered = sum(s.energy_j for s in servers)
    assert mw.fleet_energy_j() == metered + sur.modeled_energy_j


# --------------------------------------------------------------------------- #
# error-budget monitor (orchestration-plane observability)
# --------------------------------------------------------------------------- #
def test_budget_status_is_json_ready_and_tracks_drift():
    import json

    mw = _run_ticks(_city(), 16)
    sur = mw.surrogate
    status = sur.budget_status()
    json.loads(json.dumps(status, sort_keys=True))
    assert status["switched"] is True
    assert status["aggregated_districts"] == len(sur.agg_ids) >= 1
    assert status["sample_districts"] == list(sur.sample_districts)
    assert status["modeled_energy_j"] > 0
    assert 0.0 <= status["last_drift_c"] <= status["max_drift_c"]
    tol = budget.DISTRICT_MEAN_TEMP_TOL_C
    assert status["drift_budget_share"] == round(status["max_drift_c"] / tol, 4)
    assert status["budget"] == {
        "district_mean_temp_tol_c": budget.DISTRICT_MEAN_TEMP_TOL_C,
        "comfort_violation_rate_tol": budget.COMFORT_VIOLATION_RATE_TOL,
        "fleet_energy_rel_tol": budget.FLEET_ENERGY_REL_TOL,
    }
    # drift tracking costs nothing: this run had observability fully off
    assert not mw.obs.active


def test_drift_records_and_gauges_under_tracing():
    from repro import obs as O

    tracer = O.Tracer()
    registry = O.MetricsRegistry()
    with O.obs_session(O.Observability(tracer=tracer, registry=registry)):
        mw = _run_ticks(_city(), 16)
    drifts = [r for r in tracer.iter_records() if r.name == "surrogate.drift"]
    assert drifts, "no surrogate.drift records at checkpoint cadence"
    for r in drifts:
        assert r.kind == "surrogate"
        assert r.args["budget_c"] == budget.DISTRICT_MEAN_TEMP_TOL_C
        assert r.args["max_drift_c"] >= 0.0
        assert r.args["aggregated"] >= 1
        assert r.args["live"] >= len(mw.surrogate.sample_districts)
    assert registry.gauge("surrogate_drift_c").snapshot() >= 0.0
    assert registry.gauge("surrogate_aggregated_districts").snapshot() >= 1


def test_materialize_and_zoom_records_and_counters():
    from repro import obs as O

    tracer = O.Tracer()
    registry = O.MetricsRegistry()
    with O.obs_session(O.Observability(tracer=tracer, registry=registry)):
        mw = _run_ticks(_city(), 8)
        sur = mw.surrogate
        crashed = sur.agg_ids[-1]
        FaultInjector(mw).crash_server(f"district-{crashed}/building-0/qrad-0")
        zoomed = sur.agg_ids[0]
        sur.zoom_in(zoomed)

    mats = [r for r in tracer.iter_records()
            if r.name == "surrogate.materialize"]
    assert [(r.args["district"], r.args["reason"]) for r in mats] == \
        [(crashed, "churn")]
    zooms = [r for r in tracer.iter_records() if r.name == "surrogate.zoom"]
    assert [(r.args["district"], r.args["zooms"]) for r in zooms] == \
        [(zoomed, 1)]
    assert registry.counter("surrogate_materializations").snapshot() == 1.0
    assert registry.counter("surrogate_zooms").snapshot() == 1.0
    assert sur.budget_status()["materializations"] == 1
    assert sur.budget_status()["zooms"] == 1


def test_budget_instrumentation_does_not_perturb_results():
    """The monitor reads state, never feeds back: a traced surrogate run is
    byte-identical to the obs-off run of the same city."""
    from repro import obs as O

    def signature(mw):
        return (np.asarray(mw._fused_thermal.t_air).tobytes(),
                mw.fleet_energy_j(), mw.surrogate.modeled_energy_j,
                list(mw.surrogate.agg_ids), mw.surrogate.materialised)

    plain = signature(_run_ticks(_city(), 16))
    with O.obs_session(O.Observability(tracer=O.Tracer(),
                                       registry=O.MetricsRegistry())):
        traced = signature(_run_ticks(_city(), 16))
    assert traced == plain
