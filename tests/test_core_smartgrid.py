"""Tests for the smart-grid manager."""

import pytest

from repro.core.regulation import HeatRegulator, RegulatorConfig
from repro.core.smartgrid import SmartGridManager
from repro.hardware.boiler import STIMERGY_SMALL, DigitalBoiler
from repro.hardware.qrad import QRad
from repro.sim.calendar import DAY
from repro.sim.engine import Engine
from repro.thermal.hydronics import WaterLoop, WaterLoopConfig


def fleet(engine, n=3):
    sg = SmartGridManager(engine)
    pairs = []
    for i in range(n):
        q = QRad(f"q{i}", engine)
        r = HeatRegulator()
        r.set_target(20.0)
        sg.register(q, r)
        pairs.append((q, r))
    return sg, pairs


def test_authorized_power_follows_demand():
    eng = Engine()
    sg, pairs = fleet(eng)
    for _, r in pairs:
        r.update(300.0, room_temp_c=15.0)  # cold: full demand
    assert sg.authorized_power_w() == pytest.approx(3 * 500.0)
    for _, r in pairs:
        r.update(300.0, room_temp_c=25.0)
        r.reset()
    assert sg.authorized_power_w() == 0.0


def test_available_cores_tracks_heat_wanted():
    eng = Engine()
    sg, pairs = fleet(eng)
    pairs[0][1].update(300.0, 15.0)   # wants heat
    pairs[1][1].update(300.0, 25.0)   # doesn't
    pairs[2][1].update(300.0, 15.0)
    assert sg.available_cores() == 2 * 16
    assert len(sg.heat_wanted_servers()) == 2
    assert sg.fleet_size == 3


def test_boiler_counts_when_tank_has_headroom():
    eng = Engine()
    sg = SmartGridManager(eng)
    loop = WaterLoop(WaterLoopConfig(), t_init_c=40.0)  # cold tank
    b = DigitalBoiler("b0", eng, loop, spec=STIMERGY_SMALL)
    sg.register_boiler(b)
    assert sg.available_cores() == 40
    assert sg.authorized_power_w() > 0
    # full tank: headroom tiny
    loop.t_tank = loop.config.t_max_c
    assert sg.available_cores() == 0


def test_grid_cap_scales_regulators():
    eng = Engine()
    sg, pairs = fleet(eng, n=2)
    for _, r in pairs:
        r.update(300.0, 15.0)  # both at 1.0
    sg.set_grid_cap(500.0)  # half of the 1000 W demand
    sg.tick(0.0, 300.0)
    assert sg.authorized_power_w() == pytest.approx(500.0)
    assert sg.curtailment_events == 1
    sg.set_grid_cap(None)
    with pytest.raises(ValueError):
        sg.set_grid_cap(-1.0)


def test_tick_accumulates_monthly_capacity():
    eng = Engine()
    sg, pairs = fleet(eng, n=1)
    pairs[0][1].update(300.0, 15.0)
    sg.tick(5 * DAY, 3600.0)          # January
    sg.tick(200 * DAY, 3600.0)        # July (same demand here, but logged separately)
    caps = sg.monthly_capacity_core_hours()
    assert caps[1] == pytest.approx(16.0)
    assert caps[7] == pytest.approx(16.0)


def test_heat_match_error():
    eng = Engine()
    sg, pairs = fleet(eng, n=1)
    q, r = pairs[0]
    r.update(300.0, 19.9)  # tiny demand
    sg.tick(0.0, 300.0)
    # server idles at 25 W but demand is small fraction of 500 W
    err = sg.heat_match_error()
    assert err >= 0.0
    r.reset()
    r.update(300.0, 25.0)
    q.sync()
    if q.enabled and not q.running_tasks:
        q.power_off()
    assert sg.heat_match_error() == 0.0  # no demand, no draw
