"""Tests for the three request flows."""

import pytest

from repro.core.requests import (
    CloudRequest,
    EdgeMode,
    EdgeRequest,
    Flow,
    HeatingRequest,
    RequestStatus,
)


def test_heating_request_validation():
    HeatingRequest(target_temp_c=20.0, time=0.0, rooms=("a",))
    with pytest.raises(ValueError):
        HeatingRequest(target_temp_c=50.0, time=0.0)
    with pytest.raises(ValueError):
        HeatingRequest(target_temp_c=20.0, time=0.0, rooms=("a",), collective=True)


def test_collective_heating_request():
    r = HeatingRequest(target_temp_c=21.0, time=0.0, rooms=("a", "b"), collective=True)
    assert r.collective
    assert len(r.rooms) == 2


def test_cloud_request_lifecycle():
    r = CloudRequest(cycles=1e9, time=10.0)
    assert r.status is RequestStatus.CREATED
    assert not r.finished
    r.mark_completed(15.0)
    assert r.finished
    assert r.response_time() == pytest.approx(5.0)
    assert r.flow is Flow.CLOUD


def test_response_time_before_completion_raises():
    r = CloudRequest(cycles=1e9, time=0.0)
    with pytest.raises(ValueError):
        r.response_time()


def test_rejected_is_terminal():
    r = CloudRequest(cycles=1e9, time=0.0)
    r.mark_rejected()
    assert r.finished
    assert r.status is RequestStatus.REJECTED


def test_compute_request_validation():
    with pytest.raises(ValueError):
        CloudRequest(cycles=0.0, time=0.0)
    with pytest.raises(ValueError):
        CloudRequest(cycles=1e9, time=0.0, cores=0)
    with pytest.raises(ValueError):
        CloudRequest(cycles=1e9, time=0.0, input_bytes=-1.0)


def test_edge_request_deadline():
    r = EdgeRequest(cycles=1e8, time=100.0, deadline_s=1.0)
    assert r.flow is Flow.EDGE
    assert not r.deadline_met()  # not completed yet
    r.mark_completed(100.8)
    assert r.deadline_met()


def test_edge_request_deadline_miss():
    r = EdgeRequest(cycles=1e8, time=100.0, deadline_s=1.0)
    r.mark_completed(102.0)
    assert not r.deadline_met()


def test_edge_request_validation():
    with pytest.raises(ValueError):
        EdgeRequest(cycles=1e8, time=0.0, deadline_s=0.0)


def test_edge_modes():
    d = EdgeRequest(cycles=1e8, time=0.0, mode=EdgeMode.DIRECT)
    i = EdgeRequest(cycles=1e8, time=0.0, mode=EdgeMode.INDIRECT)
    assert d.mode is not i.mode


def test_request_ids_unique():
    ids = {CloudRequest(cycles=1e9, time=0.0).request_id for _ in range(100)}
    assert len(ids) == 100
