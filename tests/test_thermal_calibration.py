"""Tests for grey-box thermal identification."""

import numpy as np
import pytest

from repro.sim.rng import RngRegistry
from repro.thermal.calibration import FirstOrderRC, fit_first_order
from repro.thermal.rc_model import RCNetwork, RoomThermalParams


def synth_trace(r=0.04, c=2e6, dt=600.0, n=500, seed=0, noise=0.0):
    """Exact 1R1C trace with random heater excitation."""
    rng = RngRegistry(seed).stream("cal")
    t_out = 5.0 + 3.0 * np.sin(np.arange(n) * dt / 20000.0)
    p = rng.choice([0.0, 250.0, 500.0], size=n)
    t_air = np.empty(n)
    t_air[0] = 18.0
    for k in range(n - 1):
        t_air[k + 1] = t_air[k] + dt * ((t_out[k] - t_air[k]) / (r * c) + p[k] / c)
    if noise > 0:
        t_air = t_air + rng.normal(0.0, noise, size=n)
    return t_air, t_out, p, dt


def test_exact_recovery_on_synthetic_trace():
    t_air, t_out, p, dt = synth_trace()
    model = fit_first_order(t_air, t_out, p, dt)
    assert model.r_k_per_w == pytest.approx(0.04, rel=1e-6)
    assert model.c_j_per_k == pytest.approx(2e6, rel=1e-6)
    assert model.r2 > 0.999


def test_noisy_recovery_still_close():
    t_air, t_out, p, dt = synth_trace(noise=0.05, seed=3)
    model = fit_first_order(t_air, t_out, p, dt)
    assert model.r_k_per_w == pytest.approx(0.04, rel=0.3)
    assert model.c_j_per_k == pytest.approx(2e6, rel=0.3)


def test_identifies_2r2c_room_approximately():
    """Fitting the full 2R2C plant with a 1R1C model: R lands near the

    air-to-outdoor effective resistance (the quantity demand prediction uses).
    """
    params = RoomThermalParams()
    net = RCNetwork([params], t_init_c=18.0)
    rng = RngRegistry(1).stream("cal2")
    dt, n = 600.0, 800
    t_out = 4.0 + 2.0 * np.sin(np.arange(n) * dt / 30000.0)
    p = rng.choice([0.0, 200.0, 500.0], size=n)
    t_air = np.empty(n)
    for k in range(n):
        t_air[k] = float(net.t_air[0])
        net.step(dt, t_out=float(t_out[k]), p_heat=float(p[k]))
    model = fit_first_order(t_air, t_out, p, dt)
    g_series = 1.0 / (params.r_ie + params.r_ea)
    g_total = g_series + 1.0 / params.r_inf
    r_effective = 1.0 / g_total
    assert model.r_k_per_w == pytest.approx(r_effective, rel=0.6)
    # the operator's actual use: predicted holding power is in the right range
    p_hat = model.required_power(t_out=0.0, t_target=20.0)
    p_true = float(net.required_power(0.0, 20.0)[0])
    assert p_hat == pytest.approx(p_true, rel=0.6)


def test_prediction_and_simulation():
    t_air, t_out, p, dt = synth_trace()
    model = fit_first_order(t_air, t_out, p, dt)
    one = model.predict_next(t_air[0], t_out[0], p[0])
    assert one == pytest.approx(t_air[1], abs=1e-9)
    sim = model.simulate(t_air[0], t_out[:-1], p[:-1])
    assert np.max(np.abs(sim - t_air)) < 1e-6
    assert model.time_constant_h == pytest.approx(0.04 * 2e6 / 3600.0)


def test_required_power_clipped():
    m = FirstOrderRC(r_k_per_w=0.04, c_j_per_k=2e6, dt_s=600.0, r2=1.0)
    assert m.required_power(t_out=25.0, t_target=20.0) == 0.0
    assert m.required_power(t_out=0.0, t_target=20.0) == pytest.approx(500.0)


def test_validation_errors():
    t_air, t_out, p, dt = synth_trace(n=20)
    with pytest.raises(ValueError):
        fit_first_order(t_air[:5], t_out[:5], p[:5], dt)
    with pytest.raises(ValueError):
        fit_first_order(t_air, t_out[:-1], p, dt)
    with pytest.raises(ValueError):
        fit_first_order(t_air, t_out, p, 0.0)
    # constant power + constant delta = rank deficient
    flat = np.full(50, 20.0)
    with pytest.raises(ValueError):
        fit_first_order(flat, flat, np.zeros(50), 600.0)
