"""Tests for named RNG streams: reproducibility and independence."""

import numpy as np
import pytest

from repro.sim.rng import RngRegistry


def test_same_seed_same_stream_reproduces():
    a = RngRegistry(7).stream("weather").standard_normal(100)
    b = RngRegistry(7).stream("weather").standard_normal(100)
    np.testing.assert_array_equal(a, b)


def test_different_seeds_differ():
    a = RngRegistry(1).stream("weather").standard_normal(100)
    b = RngRegistry(2).stream("weather").standard_normal(100)
    assert not np.array_equal(a, b)


def test_different_names_independent():
    reg = RngRegistry(7)
    a = reg.stream("weather").standard_normal(100)
    b = reg.stream("arrivals").standard_normal(100)
    assert not np.array_equal(a, b)


def test_stream_identity_is_cached():
    reg = RngRegistry(0)
    assert reg.stream("x") is reg.stream("x")


def test_new_stream_does_not_perturb_existing():
    """Creating an extra stream must not change draws of another stream."""
    reg1 = RngRegistry(5)
    s1 = reg1.stream("weather")
    first = s1.standard_normal(10)

    reg2 = RngRegistry(5)
    reg2.stream("brand-new-source")  # extra stream created first
    second = reg2.stream("weather").standard_normal(10)
    np.testing.assert_array_equal(first, second)


def test_spawn_children_independent_and_deterministic():
    reg = RngRegistry(9)
    c1 = reg.spawn("rep-1")
    c2 = reg.spawn("rep-2")
    a = c1.stream("w").standard_normal(50)
    b = c2.stream("w").standard_normal(50)
    assert not np.array_equal(a, b)
    # deterministic: same spawn name → same child stream
    c1b = RngRegistry(9).spawn("rep-1")
    np.testing.assert_array_equal(a, c1b.stream("w").standard_normal(50))


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        RngRegistry(-1)


def test_names_and_contains():
    reg = RngRegistry(0)
    reg.stream("b")
    reg.stream("a")
    assert list(reg.names()) == ["a", "b"]
    assert "a" in reg
    assert "zzz" not in reg
