"""Golden regression harness: every experiment's rendered output is pinned.

``tests/golden/<EID>.txt`` holds the canonical ``str(ExperimentResult)`` of
each experiment at its default parameters.  Any change to those bytes — a
refactor that perturbs an RNG stream, a table column edit, a float-formatting
drift — fails here first, with a diff a reviewer can read.

Intentional changes are recorded with ``pytest --update-golden`` (see
``tests/conftest.py``).  Experiments that take more than a few seconds at
full fidelity are marked ``slow`` and run in the CI full job; the fast tier
still pins the quick majority.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import _registry

GOLDEN_DIR = Path(__file__).parent / "golden"

#: experiments that take > ~3 s at default fidelity (full tier only)
SLOW_IDS = {"F4", "E3", "E9", "A6"}


def _params():
    for eid, (_, fn) in _registry().items():
        marks = [pytest.mark.slow] if eid in SLOW_IDS else []
        yield pytest.param(eid, fn, id=eid, marks=marks)


def test_every_experiment_has_a_fixture():
    """Fixture completeness is checked even when slow params are deselected."""
    missing = [eid for eid in _registry()
               if not (GOLDEN_DIR / f"{eid}.txt").exists()]
    assert not missing, (
        f"missing golden fixtures for {missing}; run "
        "pytest tests/test_golden_outputs.py -m 'slow or not slow' --update-golden"
    )


def test_no_stale_fixtures():
    known = set(_registry())
    stale = [p.name for p in GOLDEN_DIR.glob("*.txt") if p.stem not in known]
    assert not stale, f"golden fixtures without a registered experiment: {stale}"


def test_a6_legacy_rows_survived_the_policy_engine():
    """The policy-engine PR reshaped the A6 table (waste split, new bundles)
    but must not perturb the pre-existing bundles' physics: the legacy rows'
    service rates are pinned here *textually*, independent of --update-golden,
    so a fixture regeneration cannot silently absorb a behaviour change."""
    text = (GOLDEN_DIR / "A6.txt").read_text(encoding="utf-8")
    rows = {tuple(line.split()[:2]): line.split()
            for line in text.splitlines() if line.startswith("mtbf=")}
    assert rows[("mtbf=24h", "none")][2] == "97.04%"
    assert rows[("mtbf=24h", "clone")][2] == "99.94%"
    assert rows[("mtbf=24h", "checkpoint")][2] == "97.24%"
    assert rows[("mtbf=2h", "none")][2] == "87.62%"
    assert rows[("mtbf=2h", "checkpoint")][3] == "10"  # all batch jobs finish


@pytest.mark.parametrize("eid,fn", _params())
def test_golden_output(eid, fn, update_golden):
    rendered = str(fn()) + "\n"
    path = GOLDEN_DIR / f"{eid}.txt"
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(rendered, encoding="utf-8")
        return
    assert path.exists(), f"missing golden fixture {path}; run --update-golden"
    assert rendered == path.read_text(encoding="utf-8"), (
        f"{eid} output drifted from tests/golden/{eid}.txt; if intentional, "
        "regenerate with --update-golden and commit the diff"
    )


# --------------------------------------------------------------------------- #
# backend cross-product: every sweep-shaped experiment matches its golden
# fixture under flat and dag, serial and parallel, cold and warm cache.
# (Non-sweep experiments have no backend dimension: run_experiment falls
# through to whole-result execution either way, already pinned above.)
# --------------------------------------------------------------------------- #
_SWEEP_IDS = ("A4", "E4", "E14", "E3", "A6")


def _sweep_params():
    for eid in _SWEEP_IDS:
        marks = [pytest.mark.dag] + (
            [pytest.mark.slow] if eid in SLOW_IDS else [])
        yield pytest.param(eid, id=eid, marks=marks)


@pytest.mark.parametrize("eid", _sweep_params())
def test_golden_identical_across_backends(eid, tmp_path):
    """flat serial ≡ dag serial ≡ dag --jobs 2 ≡ dag warm cache ≡ fixture."""
    from repro.runner import ResultCache, SweepRunner

    golden = (GOLDEN_DIR / f"{eid}.txt").read_text(encoding="utf-8")
    _, fn = _registry()[eid]
    import importlib
    spec = getattr(importlib.import_module(fn.__module__), "SWEEP")

    flat = SweepRunner(jobs=1, backend="flat").run_spec(spec)
    assert str(flat.result) + "\n" == golden

    cache = ResultCache(tmp_path / "cache")
    dag_par = SweepRunner(jobs=2, cache=cache,
                          backend="dag").run_spec(spec)
    assert str(dag_par.result) + "\n" == golden
    assert dag_par.computed == dag_par.points       # cold: all points ran
    assert dag_par.computed_nodes == dag_par.nodes  # prefixes exactly once

    warm = SweepRunner(jobs=1, cache=cache, backend="dag").run_spec(spec)
    assert str(warm.result) + "\n" == golden
    assert warm.fully_cached and warm.computed_nodes == 0


# --------------------------------------------------------------------------- #
# vector-kernel byte pin: the surrogate tier rides on the vector substrate
# (FleetRegulatorBank, FusedCityThermal, actuation masks, update_subset), so
# this PR-independent digest proves the vector kernel's own trajectory is
# untouched — independent of --update-golden, like the A6 textual pin above.
# --------------------------------------------------------------------------- #
VECTOR_KERNEL_DIGEST = \
    "b9e4cc346990f68f1a2ef90e543e9688b227882531392b7dccdffbd30469a124"


def test_vector_kernel_bytes_pinned():
    """End-to-end vector run (edge load, filler, comfort, smartgrid ledgers)
    hashes to the digest recorded before the surrogate tier landed."""
    import hashlib

    from repro.core.scheduling.base import SaturationPolicy
    from repro.experiments.common import mid_month_start, small_city
    from repro.workloads.edge import EdgeWorkloadConfig, EdgeWorkloadGenerator

    DAY = 86400.0
    mw = small_city(kernel="vector", seed=1234, start_time=mid_month_start(1),
                    n_districts=2, saturation_policy=SaturationPolicy.PREEMPT)
    t0 = mw.engine.now
    for bname in mw.buildings:
        gen = EdgeWorkloadGenerator(mw.rngs.stream(f"edge-{bname}"),
                                    source=bname,
                                    config=EdgeWorkloadConfig(rate_per_hour=30.0))
        mw.inject(gen.generate(t0, t0 + 0.1 * DAY))
    mw.run_until(t0 + 0.12 * DAY)

    comfort = mw.comfort.result()
    sig = {
        "edge": sorted((r.time, r.source, r.started_at, r.completed_at,
                        r.executed_on) for r in mw.completed_edge()),
        "expired": sorted((r.time, r.source) for r in mw.expired_edge()),
        "energy": mw.fleet_energy_j(),
        "cycles": mw.total_cycles_executed(),
        "filler": mw.filler_completed,
        "events": mw.engine.events_executed,
        "comfort": (comfort.hours_tracked, comfort.time_in_band,
                    comfort.rmse_c, comfort.mean_temp_c,
                    comfort.cold_degree_hours, comfort.overheat_degree_hours),
        "useful": mw.ledger._useful_heat_j,
        "cap": sorted(mw.smartgrid.capacity_log.items()),
        "ebl": sorted(mw.smartgrid.energy_budget_log.items()),
    }
    digest = hashlib.sha256(repr(sig).encode()).hexdigest()
    assert digest == VECTOR_KERNEL_DIGEST, (
        "the vector kernel's byte-level behaviour changed — the surrogate "
        "tier must be additive; investigate before repinning"
    )
