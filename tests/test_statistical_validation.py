"""Statistical validation of the stochastic generators (scipy-based).

Goodness-of-fit checks that the generators produce the distributions they
claim — the calibration layer of the reproduction.
"""

import numpy as np
import pytest
from scipy import stats

from repro.sim.calendar import DAY, HOUR, YEAR
from repro.sim.rng import RngRegistry
from repro.thermal.weather import Weather
from repro.workloads.arrivals import sample_nhpp
from repro.workloads.cloud import CloudJobConfig, CloudJobGenerator


def rng(name="stat", seed=0):
    return RngRegistry(seed).stream(name)


def test_homogeneous_poisson_interarrivals_are_exponential():
    lam = 0.02
    arr = sample_nhpp(rng(), lambda t: lam, lam, 0.0, 2e6)
    gaps = np.diff(arr)
    # KS test against Exp(lam); large sample → tight check
    d, p = stats.kstest(gaps, "expon", args=(0.0, 1.0 / lam))
    assert p > 0.01, f"interarrival KS p={p}"


def test_poisson_counts_match_poisson_distribution():
    lam = 0.01
    counts = []
    for i in range(200):
        arr = sample_nhpp(rng(seed=i), lambda t: lam, lam, 0.0, 10_000.0)
        counts.append(len(arr))
    mean, var = np.mean(counts), np.var(counts)
    # Poisson: variance ≈ mean (Fano factor ≈ 1)
    assert mean == pytest.approx(100.0, rel=0.1)
    assert var / mean == pytest.approx(1.0, abs=0.35)


def test_cloud_job_sizes_are_lognormal():
    cfg = CloudJobConfig(rate_per_hour=500.0, mean_core_seconds=300.0, sigma_log=0.8)
    gen = CloudJobGenerator(rng("cloud"), cfg)
    reqs = gen.generate(0.0, 5 * DAY)
    assert len(reqs) > 1000
    core_s = np.array([r.cycles / (cfg.ref_freq_ghz * 1e9) for r in reqs])
    logs = np.log(core_s)
    mu = np.log(cfg.mean_core_seconds) - 0.5 * cfg.sigma_log**2
    d, p = stats.kstest(logs, "norm", args=(mu, cfg.sigma_log))
    assert p > 0.01, f"lognormal KS p={p}"
    # normality of logs (shapiro on a subsample)
    _, p_sw = stats.shapiro(logs[:500])
    assert p_sw > 0.001


def test_weather_noise_is_stationary_gaussianish():
    w = Weather(rng("weather", seed=4), horizon=4 * YEAR)
    ts = np.arange(0, 4 * YEAR, 3 * HOUR)
    resid = w.outdoor_temperature(ts) - w.seasonal_component(ts)
    # split-half stationarity: means and stds agree
    a, b = resid[: resid.size // 2], resid[resid.size // 2:]
    assert abs(np.mean(a) - np.mean(b)) < 0.5
    assert np.std(a) == pytest.approx(np.std(b), rel=0.2)
    # AR(1) residual normality after whitening
    phi = np.corrcoef(resid[:-1], resid[1:])[0, 1]
    innov = resid[1:] - phi * resid[:-1]
    _, p = stats.shapiro(innov[:500])
    assert p > 0.001


def test_weather_autocorrelation_time_matches_config():
    w = Weather(rng("weather", seed=5), horizon=4 * YEAR)
    ts = np.arange(0, 4 * YEAR, HOUR)
    resid = w.outdoor_temperature(ts) - w.seasonal_component(ts)
    r1 = np.corrcoef(resid[:-1], resid[1:])[0, 1]
    tau_hours = -1.0 / np.log(r1)
    assert tau_hours == pytest.approx(w.config.noise_corr_hours, rel=0.35)
