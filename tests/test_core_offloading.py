"""Tests for vertical/horizontal offloading and cooperation fairness."""

import pytest

from repro.core.cluster import Cluster, ClusterConfig
from repro.core.offloading import CooperationLedger, Offloader
from repro.core.requests import CloudRequest, EdgeRequest, RequestStatus
from repro.core.scheduling.base import SaturationPolicy
from repro.core.scheduling.shared import SharedWorkersScheduler
from repro.hardware.cpu import DVFSLadder, PState
from repro.hardware.datacenter import Datacenter
from repro.hardware.server import ComputeServer, ServerSpec
from repro.network.internet import WANLink, WANProfile
from repro.network.link import Link
from repro.sim.engine import Engine

GHZ = 1e9


def spec(n_cores=2):
    return ServerSpec("t", n_cores, DVFSLadder([PState(1.0, 1.0)]), 10.0, 100.0)


def make_sched(engine, name, offloader=None, policy=SaturationPolicy.QUEUE, cores=2):
    c = Cluster(ClusterConfig(name=name))
    c.add_worker(ComputeServer(f"{name}-w0", spec(cores), engine))
    return SharedWorkersScheduler(c, engine, policy=policy, offloader=offloader)


def edge(t=0.0, cycles=GHZ, deadline=60.0, privacy=False):
    return EdgeRequest(cycles=cycles, time=t, deadline_s=deadline,
                       privacy_sensitive=privacy, source="district-0/b",
                       input_bytes=1e4, output_bytes=1e3)


# --------------------------------------------------------------------------- #
# ledger
# --------------------------------------------------------------------------- #
def test_ledger_balances():
    led = CooperationLedger()
    led.record("a", "b", 100.0)
    led.record("a", "b", 50.0)
    led.record("b", "a", 30.0)
    assert led.given_by("a") == 150.0
    assert led.received_by("a") == 30.0
    assert led.net_balance("a") == 120.0
    assert led.net_balance("b") == -120.0
    assert led.clusters() == ["a", "b"]


def test_ledger_validation():
    led = CooperationLedger()
    with pytest.raises(ValueError):
        led.record("a", "a", 10.0)
    with pytest.raises(ValueError):
        led.record("a", "b", -1.0)


def test_jain_fairness():
    led = CooperationLedger()
    assert led.jain_fairness() == 1.0  # empty
    led.record("a", "b", 100.0)
    led.record("b", "a", 100.0)
    assert led.jain_fairness() == pytest.approx(1.0)
    led2 = CooperationLedger()
    led2.record("a", "b", 100.0)
    led2.record("c", "b", 0.0)
    assert led2.jain_fairness() < 1.0  # a carries everything


# --------------------------------------------------------------------------- #
# vertical
# --------------------------------------------------------------------------- #
def test_vertical_requires_wan():
    eng = Engine()
    dc = Datacenter("dc", 1, eng)
    with pytest.raises(ValueError):
        Offloader(eng, datacenter=dc, wan=None)


def test_vertical_offload_executes_in_dc():
    eng = Engine()
    dc = Datacenter("dc", 1, eng)
    wan = WANLink(WANProfile.national_internet())
    off = Offloader(eng, datacenter=dc, wan=wan)
    sched = make_sched(eng, "c0", offloader=off)
    req = edge()
    off.vertical(req, sched)
    assert req.status is RequestStatus.OFFLOADED
    eng.run_until(100.0)
    assert req.status is RequestStatus.COMPLETED
    assert req.executed_on == "dc"
    assert req.network_delay_s > 0.02  # two WAN trips
    assert req in sched.completed_edge
    assert off.vertical_count == 1


def test_vertical_latency_exceeds_local():
    """The offload latency cost of §II-C, quantified."""
    eng = Engine()
    dc = Datacenter("dc", 1, eng)
    wan = WANLink(WANProfile.national_internet())
    off = Offloader(eng, datacenter=dc, wan=wan)
    sched = make_sched(eng, "c0", offloader=off)
    local = edge()
    sched.submit_edge(local)
    remote = edge()
    off.vertical(remote, sched)
    eng.run_until(100.0)
    # same cycles; DC cores are 3.2 GHz vs local 1 GHz, but WAN adds latency.
    assert remote.network_delay_s > local.network_delay_s


def test_privacy_blocks_vertical_by_default():
    eng = Engine()
    dc = Datacenter("dc", 1, eng)
    off = Offloader(eng, datacenter=dc, wan=WANLink(WANProfile.metro_fiber()))
    sched = make_sched(eng, "c0", offloader=off)
    private = edge(privacy=True)
    assert not off.can_vertical(private)
    with pytest.raises(PermissionError):
        off.vertical(private, sched)
    allow = Offloader(eng, datacenter=dc, wan=WANLink(WANProfile.metro_fiber()),
                      allow_privacy_vertical=True)
    assert allow.can_vertical(private)


def test_cloud_requests_always_vertical_eligible():
    eng = Engine()
    dc = Datacenter("dc", 1, eng)
    off = Offloader(eng, datacenter=dc, wan=WANLink(WANProfile.metro_fiber()))
    assert off.can_vertical(CloudRequest(cycles=GHZ, time=0.0))


def test_no_dc_no_vertical():
    eng = Engine()
    off = Offloader(eng)
    assert not off.can_vertical(edge())


# --------------------------------------------------------------------------- #
# horizontal
# --------------------------------------------------------------------------- #
def make_pair(eng, policy=SaturationPolicy.HORIZONTAL):
    off = Offloader(eng)
    s0 = make_sched(eng, "c0", offloader=off, policy=policy, cores=1)
    s1 = make_sched(eng, "c1", offloader=off, policy=policy, cores=4)
    off.register_peer("c0", s0, Link("m0", 0.004, 1e9))
    off.register_peer("c1", s1, Link("m1", 0.004, 1e9))
    return off, s0, s1


def test_horizontal_moves_to_free_peer():
    eng = Engine()
    off, s0, s1 = make_pair(eng)
    blocker = CloudRequest(cycles=100 * GHZ, time=0.0)
    s0.submit_cloud(blocker)  # fills c0's single core
    req = edge()
    s0.submit_edge(req)
    eng.run_until(100.0)
    assert req.status is RequestStatus.COMPLETED
    assert req.executed_on == "c1-w0"
    assert off.horizontal_count == 1
    assert off.ledger.given_by("c1") == pytest.approx(req.cycles)
    assert req in s1.completed_edge  # completion recorded at the executing peer
    assert s0.stats.edge_offloaded_horizontal == 1


def test_horizontal_no_pingpong():
    """An already-offloaded request is queued, not offloaded again."""
    eng = Engine()
    off, s0, s1 = make_pair(eng)
    # saturate both clusters
    s0.submit_cloud(CloudRequest(cycles=1000 * GHZ, time=0.0))
    for _ in range(4):
        s1.submit_cloud(CloudRequest(cycles=1000 * GHZ, time=0.0))
    req = edge(deadline=1e6)
    req.__dict__["_offloaded_once"] = True  # simulate a prior hop
    s0.submit_edge(req)
    assert req.status is RequestStatus.QUEUED
    assert off.horizontal_count == 0


def test_horizontal_falls_back_to_queue_when_no_peer_fits():
    eng = Engine()
    off, s0, s1 = make_pair(eng)
    for _ in range(4):
        s1.submit_cloud(CloudRequest(cycles=1000 * GHZ, time=0.0))
    s0.submit_cloud(CloudRequest(cycles=1000 * GHZ, time=0.0))
    req = edge(deadline=1e6)
    s0.submit_edge(req)
    assert req.status is RequestStatus.QUEUED


def test_best_peer_excludes_self():
    eng = Engine()
    off, s0, s1 = make_pair(eng)
    assert off.best_peer(edge(), exclude="c0") == "c1"
    assert off.best_peer(edge(), exclude="c1") == "c0"


def test_duplicate_peer_rejected():
    eng = Engine()
    off, s0, s1 = make_pair(eng)
    with pytest.raises(ValueError):
        off.register_peer("c0", s0, Link("m", 0.001, 1e9))
