"""Tests for base links and WAN links."""

import numpy as np
import pytest

from repro.network.internet import WANLink, WANProfile
from repro.network.link import Link
from repro.sim.rng import RngRegistry


def test_delay_components():
    link = Link("l", latency_s=0.01, bandwidth_bps=1e6)
    r = link.transfer(1250)  # 10 kbit over 1 Mbps = 10 ms
    assert r.latency_s == 0.01
    assert r.serialisation_s == pytest.approx(0.01)
    assert r.jitter_s == 0.0
    assert r.delay_s == pytest.approx(0.02)


def test_zero_size_pays_latency_only():
    link = Link("l", latency_s=0.005, bandwidth_bps=1e6)
    assert link.delay(0) == pytest.approx(0.005)


def test_accounting():
    link = Link("l", 0.001, 1e6)
    link.transfer(100)
    link.transfer(200)
    assert link.bytes_carried == 300
    assert link.transfers == 2


def test_jitter_requires_rng_and_is_nonnegative():
    with pytest.raises(ValueError):
        Link("l", 0.001, 1e6, jitter_std_s=0.01)
    rng = RngRegistry(0).stream("net")
    link = Link("l", 0.001, 1e6, jitter_std_s=0.01, rng=rng)
    delays = [link.transfer(0).jitter_s for _ in range(100)]
    assert all(d >= 0 for d in delays)
    assert max(delays) > 0


def test_expected_delay_deterministic():
    rng = RngRegistry(0).stream("net")
    link = Link("l", 0.001, 1e6, jitter_std_s=0.05, rng=rng)
    assert link.expected_delay(1250) == pytest.approx(0.001 + 0.01)
    assert link.transfers == 0  # expected_delay does not count as a transfer


def test_invalid_params():
    with pytest.raises(ValueError):
        Link("l", -0.001, 1e6)
    with pytest.raises(ValueError):
        Link("l", 0.001, 0.0)
    with pytest.raises(ValueError):
        Link("l", 0.001, 1e6).transfer(-1)


def test_wan_profiles_ordering():
    metro = WANProfile.metro_fiber()
    national = WANProfile.national_internet()
    continental = WANProfile.continental_internet()
    assert metro.latency_s < national.latency_s < continental.latency_s


def test_wan_round_trip():
    wan = WANLink(WANProfile.metro_fiber())
    rt = wan.round_trip(1000, 1000)
    assert rt == pytest.approx(2 * wan.expected_delay(1000))
