"""Task-DAG executor: graph properties, node keys, and fault injection.

Three groups, all ``dag``-marked:

* **hypothesis properties of TaskGraph** — on randomly generated DAGs,
  ``order()`` is always a valid topological order, ``ready()`` never yields a
  node before its upstreams, execution in *any* valid order reassembles to
  the same values, and cycles raise :class:`GraphCycleError` cleanly instead
  of hanging a scheduler;
* **node keys** — content-addressed recursively: editing a prefix re-keys
  every transitive consumer and nothing else;
* **fault injection for ProcessBackend** — a worker killed mid-node is
  retried on another worker exactly once; a node that keeps killing its
  workers exhausts the retry budget and raises; a deterministic cell
  exception aborts without retry.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import SweepRunner
from repro.runner.backend import (
    NodeExecutionError,
    ProcessBackend,
    WorkerCrashError,
)
from repro.runner.graph import GraphCycleError, TaskGraph, TaskNode, node_key

pytestmark = pytest.mark.dag


# --------------------------------------------------------------------------- #
# cells executed by pool workers (module-level → import by reference)
# --------------------------------------------------------------------------- #
def _double(x: int) -> int:
    return 2 * x


def _add(a: int = 0, b: int = 0, bias: int = 0) -> int:
    return a + b + bias


def _fragile_cell(tag: str, flag_dir: str) -> str:
    """Dies with its whole worker process on the first attempt only."""
    flag = Path(flag_dir) / f"{tag}.attempted"
    if not flag.exists():
        flag.write_text("attempted")
        time.sleep(0.3)   # let the claim/start messages flush to the parent
        os._exit(42)      # hard kill: no exception, no cleanup, no result
    return f"ok-{tag}"


def _doomed_cell(flag_dir: str) -> str:
    """Kills every worker that ever runs it — exhausts any retry budget."""
    time.sleep(0.3)
    os._exit(42)


def _raising_cell(tag: str) -> None:
    raise ValueError(f"deterministic failure in {tag}")


# --------------------------------------------------------------------------- #
# random DAG strategy: node i may depend on any subset of nodes 0..i-1,
# so generated graphs are acyclic by construction
# --------------------------------------------------------------------------- #
@st.composite
def dags(draw) -> TaskGraph:
    n = draw(st.integers(min_value=1, max_value=10))
    graph = TaskGraph()
    for i in range(n):
        uplinks = draw(st.lists(st.integers(min_value=0, max_value=i - 1),
                                unique=True, max_size=3)) if i else []
        graph.add(TaskNode(
            experiment_id="PROP", node_id=f"n{i}", cell="m:f",
            params=(("i", i),),
            needs=tuple((f"up{j}", f"n{j}") for j in uplinks),
            kind="prefix" if not uplinks and draw(st.booleans()) else "point",
        ))
    return graph


@given(dags())
def test_order_is_a_valid_topological_order(graph):
    order = graph.order()
    assert sorted(order) == sorted(graph.node_ids)     # a permutation
    position = {nid: i for i, nid in enumerate(order)}
    for node in graph:
        for up in node.upstream_ids:
            assert position[up] < position[node.node_id]


@given(dags())
def test_order_is_deterministic(graph):
    assert graph.order() == graph.order()


@given(dags())
def test_ready_never_yields_a_node_before_its_upstreams(graph):
    """Draining the ready frontier one node at a time is always safe."""
    done: set = set()
    while len(done) < len(graph):
        frontier = graph.ready(done)
        assert frontier, "non-empty DAG must always have a ready node"
        nid = frontier[0]
        assert all(up in done for up in graph[nid].upstream_ids)
        assert nid not in done
        done.add(nid)
    assert graph.ready(done) == []


@given(dags(), st.randoms())
def test_execution_order_cannot_leak_into_values(graph, rnd):
    """Any upstream-respecting execution order yields identical values.

    This is the reassembly half of the byte-identity contract: the work-
    stealing backend may complete nodes in any interleaving, and the values
    (here: a pure function of each node's params and upstream values) are
    the same as the deterministic inline order's.
    """
    def run_in(order):
        values = {}
        for nid in order:
            node = graph[nid]
            upstream_sum = sum(values[up] for up in node.upstream_ids)
            values[nid] = dict(node.params)["i"] + 10 * upstream_sum
        return values

    reference = run_in(graph.order())
    # a random valid schedule: repeatedly pick any ready node
    done: set = set()
    shuffled = []
    while len(done) < len(graph):
        nid = rnd.choice(graph.ready(done))
        shuffled.append(nid)
        done.add(nid)
    assert run_in(shuffled) == reference


def test_cycle_detection_raises_cleanly():
    graph = TaskGraph([
        TaskNode("X", "a", "m:f", needs=(("v", "b"),)),
        TaskNode("X", "b", "m:f", needs=(("v", "a"),)),
        TaskNode("X", "c", "m:f"),
    ])
    with pytest.raises(GraphCycleError) as err:
        graph.order()
    assert set(err.value.members) == {"a", "b"}
    with pytest.raises(GraphCycleError):
        graph.validate()


def test_dangling_edge_is_rejected():
    graph = TaskGraph([TaskNode("X", "a", "m:f", needs=(("v", "ghost"),))])
    with pytest.raises(ValueError, match="unknown node 'ghost'"):
        graph.order()


def test_node_validation():
    with pytest.raises(ValueError, match="module:function"):
        TaskNode("X", "a", "not-a-ref")
    with pytest.raises(ValueError, match="kind"):
        TaskNode("X", "a", "m:f", kind="other")
    with pytest.raises(ValueError, match="share kwarg names"):
        TaskNode("X", "a", "m:f", params=(("v", 1),), needs=(("v", "b"),))
    with pytest.raises(ValueError, match="duplicate node id"):
        TaskGraph([TaskNode("X", "a", "m:f"), TaskNode("X", "a", "m:f")])


def test_execute_requires_upstream_values():
    node = TaskNode("X", "a", "tests.test_runner_graph:_add",
                    needs=(("a", "up"),))
    with pytest.raises(KeyError, match="needs upstream 'up'"):
        node.execute({})
    assert node.execute({"up": 3}) == 3


# --------------------------------------------------------------------------- #
# node keys: recursive content addressing
# --------------------------------------------------------------------------- #
def _prefix_fanout(bias: int = 0) -> TaskGraph:
    return TaskGraph([
        TaskNode("K", "shared", "tests.test_runner_graph:_double",
                 params=(("x", 21 + bias),), kind="prefix"),
        TaskNode("K", "left", "tests.test_runner_graph:_add",
                 needs=(("a", "shared"),)),
        TaskNode("K", "right", "tests.test_runner_graph:_add",
                 params=(("bias", 1),), needs=(("a", "shared"),)),
        TaskNode("K", "lonely", "tests.test_runner_graph:_add",
                 params=(("a", 5),)),
    ])


def test_editing_a_prefix_rekeys_its_consumers_only():
    before = _prefix_fanout()
    after = _prefix_fanout(bias=1)   # the prefix's params changed
    changed = {nid for nid in before.node_ids
               if node_key(before, nid) != node_key(after, nid)}
    assert changed == {"shared", "left", "right"}   # lonely is untouched


def test_node_keys_separate_siblings_and_kinds():
    graph = _prefix_fanout()
    keys = {node_key(graph, nid) for nid in graph.node_ids}
    assert len(keys) == 4
    # same spec, different kind → different key
    as_point = TaskGraph([TaskNode("K", "shared",
                                   "tests.test_runner_graph:_double",
                                   params=(("x", 21),), kind="point")])
    assert node_key(as_point, "shared") != node_key(graph, "shared")


def test_node_key_memo_is_consistent():
    graph = _prefix_fanout()
    memo: dict = {}
    keys = [node_key(graph, nid, memo) for nid in graph.node_ids]
    assert keys == [node_key(graph, nid) for nid in graph.node_ids]
    assert set(memo) == set(graph.node_ids)


# --------------------------------------------------------------------------- #
# fault injection: ProcessBackend under worker death
# --------------------------------------------------------------------------- #
def _execute(backend: ProcessBackend, graph: TaskGraph):
    values: dict = {}
    completions: list = []
    stats = backend.execute(graph, graph.node_ids, values,
                            lambda nid, value: completions.append(nid))
    return values, completions, stats


def test_worker_killed_mid_node_is_retried_exactly_once(tmp_path):
    graph = TaskGraph(
        [TaskNode("F", "fragile", "tests.test_runner_graph:_fragile_cell",
                  params=(("tag", "fragile"), ("flag_dir", str(tmp_path))))]
        + [TaskNode("F", f"plain-{i}", "tests.test_runner_graph:_add",
                    params=(("a", i),)) for i in range(3)]
    )
    backend = ProcessBackend(jobs=2, chunk_size=1, poll_s=0.05,
                             stall_timeout_s=3.0)
    values, completions, stats = _execute(backend, graph)

    assert values["fragile"] == "ok-fragile"
    assert {f"plain-{i}": i for i in range(3)}.items() <= values.items()
    assert sorted(completions) == sorted(graph.node_ids)
    assert stats.executed == 4
    assert stats.worker_deaths == 1      # only the fragile node's first host
    assert stats.retried_nodes == 1      # retried exactly once, elsewhere
    # the flag file proves the cell genuinely ran twice: one killed attempt,
    # one clean one (a third would have tripped the retry budget and raised)
    assert [f.name for f in tmp_path.glob("*.attempted")] == \
        ["fragile.attempted"]


def test_node_that_keeps_killing_workers_exhausts_retry_budget(tmp_path):
    graph = TaskGraph([
        TaskNode("F", "doomed", "tests.test_runner_graph:_doomed_cell",
                 params=(("flag_dir", str(tmp_path)),)),
    ])
    backend = ProcessBackend(jobs=1, poll_s=0.05, stall_timeout_s=3.0,
                             retry_limit=1)
    with pytest.raises(WorkerCrashError):
        _execute(backend, graph)


def test_deterministic_cell_exception_aborts_without_retry():
    graph = TaskGraph([
        TaskNode("F", "boom", "tests.test_runner_graph:_raising_cell",
                 params=(("tag", "boom"),)),
    ])
    backend = ProcessBackend(jobs=2, poll_s=0.05)
    with pytest.raises(NodeExecutionError, match="deterministic failure"):
        _execute(backend, graph)


# --------------------------------------------------------------------------- #
# the acceptance assertion: A6's shared prefix is computed exactly once
# --------------------------------------------------------------------------- #
def test_a6_dag_computes_shared_prefix_exactly_once(monkeypatch):
    """The real A6 graph shape with stubbed cells: 21 points, 1 prefix node,
    and a DAG run executes the prefix exactly once (node counts prove it)."""
    import repro.experiments.a6_churn as a6

    calls = {"plan": 0, "cell": 0}

    def fake_plan(seed):
        calls["plan"] += 1
        return ("plan", seed)

    def fake_cell(seed, mtbf_s, recovery, plan=None):
        calls["cell"] += 1
        assert plan == ("plan", seed)   # the injected prefix value arrived
        return {"mtbf_s": mtbf_s}

    monkeypatch.setattr(a6, "_workload_plan", fake_plan)
    monkeypatch.setattr(a6, "_run_cell", fake_cell)

    from repro.runner.spec import SweepSpec
    # the real A6 decomposition (points, prefix, needs edges) with a pass-
    # through reduce, so the stub cell values don't have to mimic sim rows
    spec = SweepSpec("A6", points=a6.sweep_points,
                     reduce=lambda cells, seed=101: cells,
                     prefixes=a6.sweep_prefixes)
    report = SweepRunner(jobs=1, backend="dag").run_spec(spec, seed=101)
    assert report.points == 21
    assert report.nodes == 22            # 21 grid cells + 1 shared prefix
    assert report.computed_nodes == 22
    assert calls == {"plan": 1, "cell": 21}
