"""Tests for comfort metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.thermal.comfort import ComfortTracker


def test_perfect_tracking():
    tr = ComfortTracker(band_c=1.0)
    for _ in range(10):
        tr.add(3600.0, temps=20.0, setpoints=20.0)
    s = tr.result()
    assert s.time_in_band == 1.0
    assert s.rmse_c == 0.0
    assert s.cold_degree_hours == 0.0
    assert s.overheat_degree_hours == 0.0
    assert s.hours_tracked == pytest.approx(10.0)


def test_constant_cold_error():
    tr = ComfortTracker(band_c=1.0)
    tr.add(3600.0, temps=18.0, setpoints=20.0)  # 2 °C cold for one hour
    s = tr.result()
    assert s.time_in_band == 0.0
    assert s.rmse_c == pytest.approx(2.0)
    assert s.cold_degree_hours == pytest.approx(2.0)
    assert s.overheat_degree_hours == 0.0


def test_overheat_counts_above_band_only():
    tr = ComfortTracker(band_c=1.0)
    tr.add(3600.0, temps=23.0, setpoints=20.0)  # 3 above, 2 above band
    s = tr.result()
    assert s.overheat_degree_hours == pytest.approx(2.0)
    assert s.cold_degree_hours == 0.0


def test_vector_rooms_pooled():
    tr = ComfortTracker(band_c=1.0)
    tr.add(3600.0, temps=np.array([20.0, 18.0]), setpoints=20.0)
    s = tr.result()
    assert s.time_in_band == pytest.approx(0.5)
    assert s.mean_temp_c == pytest.approx(19.0)


def test_monthly_means():
    tr = ComfortTracker()
    tr.add(60.0, temps=20.0, setpoints=20.0, month=11)
    tr.add(60.0, temps=22.0, setpoints=20.0, month=11)
    tr.add(60.0, temps=19.0, setpoints=20.0, month=12)
    assert tr.monthly_mean_temps() == {11: pytest.approx(21.0), 12: pytest.approx(19.0)}


def test_empty_tracker_raises():
    with pytest.raises(ValueError):
        ComfortTracker().result()


def test_invalid_args():
    with pytest.raises(ValueError):
        ComfortTracker(band_c=0.0)
    with pytest.raises(ValueError):
        ComfortTracker().add(0.0, temps=20.0, setpoints=20.0)


@settings(max_examples=50, deadline=None)
@given(
    temps=st.lists(st.floats(min_value=0.0, max_value=40.0), min_size=1, max_size=20),
    setpoint=st.floats(min_value=15.0, max_value=25.0),
)
def test_property_bounds(temps, setpoint):
    tr = ComfortTracker(band_c=1.0)
    tr.add(600.0, temps=np.array(temps), setpoints=setpoint)
    s = tr.result()
    assert 0.0 <= s.time_in_band <= 1.0
    assert s.rmse_c >= 0.0
    assert s.cold_degree_hours >= 0.0
    assert s.overheat_degree_hours >= 0.0
    assert min(temps) - 1e-9 <= s.mean_temp_c <= max(temps) + 1e-9
