"""Property-based tests (hypothesis) for the runner's building blocks.

Three properties carry the whole caching/parallelism design:

* **hash stability & separation** — :func:`repro.runner.stable_hash` must be
  a pure function of *value and type* (never of dict insertion order or
  process state), and must keep ``1``, ``1.0``, ``True`` and ``"1"`` apart
  even though Python calls them equal-ish;
* **order-independent reassembly** — whatever order workers finish in,
  :func:`repro.runner.runner.reassemble` hands ``reduce`` the cells in
  points order;
* **cache round-trip fidelity** — any ``ExperimentResult.data`` payload
  comes back from the cache equal to what went in.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.common import ExperimentResult
from repro.runner import ResultCache, stable_hash
from repro.runner.hashing import canonical
from repro.runner.runner import point_key, reassemble
from repro.runner.spec import SweepPoint

# JSON-ish payloads of the kind experiment cells actually return
scalars = (st.none() | st.booleans() | st.integers()
           | st.floats(allow_nan=False) | st.text(max_size=20))
payloads = st.recursive(
    scalars,
    lambda children: (st.lists(children, max_size=4)
                      | st.dictionaries(st.text(max_size=8), children, max_size=4)),
    max_leaves=25,
)


# --------------------------------------------------------------------------- #
# stable_hash
# --------------------------------------------------------------------------- #
@given(payloads)
def test_hash_is_stable_under_copy(payload):
    assert stable_hash(payload) == stable_hash(copy.deepcopy(payload))


@given(st.dictionaries(st.text(max_size=8), scalars, min_size=2, max_size=6),
       st.randoms())
def test_hash_ignores_dict_insertion_order(d, rnd):
    items = list(d.items())
    rnd.shuffle(items)
    assert stable_hash(dict(items)) == stable_hash(d)


@given(payloads, payloads)
def test_hash_collision_implies_equality(a, b):
    """Soundness: a cache key collision would mean the values really match.

    (``canonical`` is injective on supported types modulo SHA-256, so two
    payloads sharing a hash must share a canonical encoding.)
    """
    if stable_hash(a) == stable_hash(b):
        assert canonical(a) == canonical(b)
        assert a == b


def test_hash_separates_equalish_types():
    values = [1, 1.0, True, "1", None, (1,), [1]]
    hashes = {stable_hash(v) for v in values}
    # 1 vs 1.0 vs True vs "1" vs None all distinct; (1,) and [1] share an
    # encoding deliberately (sequence identity, like JSON)
    assert len(hashes) == len(values) - 1
    assert stable_hash((1,)) == stable_hash([1])


def test_point_key_sensitivity():
    """The cache key moves with every field of the spec."""
    base = SweepPoint("E4", "steady/shared",
                      "repro.experiments.e4_architectures:_scenario",
                      params=(("seed", 23), ("burst", False)))
    variants = [
        SweepPoint("E4", "steady/shared", base.cell,
                   params=(("seed", 24), ("burst", False))),
        SweepPoint("E4", "burst/shared", base.cell, params=base.params),
        SweepPoint("E5", "steady/shared", base.cell, params=base.params),
        SweepPoint("E4", "steady/shared",
                   "repro.experiments.e14_scale:_scale_point",
                   params=base.params),
    ]
    keys = {point_key(p) for p in [base, *variants]}
    assert len(keys) == 5


def test_point_params_order_is_canonical():
    a = SweepPoint("X", "p", "m:f", params=(("a", 1), ("b", 2)))
    b = SweepPoint("X", "p", "m:f", params=(("b", 2), ("a", 1)))
    assert a == b
    assert point_key(a) == point_key(b)


# --------------------------------------------------------------------------- #
# order-independent reassembly
# --------------------------------------------------------------------------- #
@given(st.integers(min_value=1, max_value=12).flatmap(
    lambda n: st.tuples(st.just(n), st.permutations(range(n)))))
def test_reassembly_is_completion_order_independent(case):
    n, completion_order = case
    points = [SweepPoint("X", f"p{i}", "m:f", params=(("i", i),))
              for i in range(n)]
    outcomes = {}
    for i in completion_order:  # workers finish in arbitrary order
        outcomes[f"p{i}"] = i * 10
    cells = reassemble(points, outcomes)
    assert list(cells) == [f"p{i}" for i in range(n)]       # points order
    assert list(cells.values()) == [i * 10 for i in range(n)]


def test_reassembly_rejects_missing_points():
    points = [SweepPoint("X", "p0", "m:f"), SweepPoint("X", "p1", "m:f")]
    with pytest.raises(KeyError, match="p1"):
        reassemble(points, {"p0": 1})


# --------------------------------------------------------------------------- #
# cache round-trip
# --------------------------------------------------------------------------- #
@settings(max_examples=60)
@given(payloads)
def test_cache_roundtrips_arbitrary_result_data(tmp_path_factory, payload):
    cache = ResultCache(tmp_path_factory.getbasetemp() / "prop_cache")
    result = ExperimentResult(experiment_id="XX", title="prop",
                              text="t", data={"payload": payload})
    key = stable_hash(("prop", payload))
    cache.put(key, result)
    hit, back = cache.get(key)
    assert hit
    assert back == result
    assert back.data["payload"] == payload
