"""Unit tests for the content-addressed result cache and the run report."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.runner import ResultCache, SweepRunner, code_version, stable_hash
from repro.runner.runner import RunReport, result_key

_CALLS = {"n": 0}


def _fake_experiment(seed: int = 3) -> ExperimentResult:
    _CALLS["n"] += 1
    return ExperimentResult(experiment_id="FX", title="fake",
                            text=f"seed={seed}", data={"seed": seed})


def _other_experiment(seed: int = 3) -> ExperimentResult:
    return ExperimentResult(experiment_id="FY", title="other",
                            text="other", data={})


# --------------------------------------------------------------------------- #
def test_cache_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.get("ab" * 32) == (False, None)
    cache.put("ab" * 32, {"x": 1})
    assert "ab" * 32 in cache
    hit, value = cache.get("ab" * 32)
    assert hit and value == {"x": 1}
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.writes == 1
    assert len(cache) == 1


def test_cache_survives_corrupt_entries(tmp_path):
    cache = ResultCache(tmp_path)
    key = stable_hash("victim")
    cache.put(key, [1, 2, 3])
    path = cache._path(key)
    path.write_bytes(b"\x80\x04 this is not a pickle")
    hit, value = cache.get(key)
    assert not hit and value is None  # corrupt entry degrades to a miss


def test_corrupt_node_entry_degrades_to_miss_and_recomputes(tmp_path):
    """DAG path: corrupting one per-node cache entry silently recomputes
    just that node (and its prefix ancestor) on the next run."""
    import repro.experiments.e3_seasonal_capacity as e3
    from repro.runner.graph import graph_of, node_key

    cache = ResultCache(tmp_path / "dagcache")
    spec = e3.SWEEP
    kwargs = dict(days_per_month=0.02, seed=5)
    cold = SweepRunner(jobs=1, cache=cache, backend="dag").run_spec(
        spec, **kwargs)
    assert cold.computed == cold.points == 24
    assert cold.computed_nodes == 26        # 24 months + 2 fleet blueprints

    # corrupt exactly one point node's entry on disk
    graph = graph_of(spec, **kwargs)
    victim = graph.points()[0].node_id
    cache._path(node_key(graph, victim)).write_bytes(b"\x00 not a pickle")

    warm = SweepRunner(jobs=1, cache=cache, backend="dag").run_spec(
        spec, **kwargs)
    assert warm.result.text == cold.result.text
    assert warm.computed == 1               # only the corrupted point re-ran
    assert warm.cached == 23
    # its blueprint prefix ancestor was a cache hit, not a recompute
    assert warm.computed_nodes == 1
    assert warm.cached_nodes == 24          # 23 points + the needed prefix


def test_cache_clear(tmp_path):
    cache = ResultCache(tmp_path)
    for i in range(5):
        cache.put(stable_hash(i), i)
    assert len(cache) == 5
    assert cache.clear() == 5
    assert len(cache) == 0


def test_cache_shards_by_key_prefix(tmp_path):
    cache = ResultCache(tmp_path)
    key = stable_hash("sharded")
    cache.put(key, 1)
    assert cache._path(key).parent.name == key[:2]


# --------------------------------------------------------------------------- #
def test_whole_result_caching_for_non_sweep_experiments(tmp_path):
    cache = ResultCache(tmp_path)
    runner = SweepRunner(jobs=1, cache=cache)
    before = _CALLS["n"]
    first = runner.run_experiment(_fake_experiment, seed=9)
    assert first.computed == 1 and first.cached == 0 and first.points == 0
    second = runner.run_experiment(_fake_experiment, seed=9)
    assert second.cached == 1 and second.computed == 0
    assert second.fully_cached
    assert second.result == first.result
    assert _CALLS["n"] == before + 1  # the second call never executed
    # different kwargs → different key
    third = runner.run_experiment(_fake_experiment, seed=10)
    assert third.computed == 1


def test_whole_result_keys_do_not_collide_across_functions():
    k1 = result_key(f"{_fake_experiment.__module__}:{_fake_experiment.__qualname__}", {})
    k2 = result_key(f"{_other_experiment.__module__}:{_other_experiment.__qualname__}", {})
    assert k1 != k2


def test_no_cache_means_always_computed():
    runner = SweepRunner(jobs=1, cache=None)
    before = _CALLS["n"]
    runner.run_experiment(_fake_experiment)
    runner.run_experiment(_fake_experiment)
    assert _CALLS["n"] == before + 2


def test_code_version_is_stable_within_process():
    assert code_version() == code_version()
    assert len(code_version()) == 64


def test_run_report_fully_cached_flag():
    assert RunReport(result=None, points=3, computed=0, cached=3).fully_cached
    assert not RunReport(result=None, points=3, computed=1, cached=2).fully_cached
