"""A Qarnot-style render farm across the seasons.

Replays a scaled slice of the published 2016 campaign (1100 users, 600 000
frames, 11 M core-hours) against the DF3 fleet in January and in July.  In
winter the frames run on heaters whose rooms want the heat; in summer the
rooms refuse it, the boards power down, and the hybrid infrastructure pushes
frames to the classical datacenter instead (§III-A).

Run:  python examples/render_farm_seasons.py
"""

from repro.core.middleware import DF3Middleware, MiddlewareConfig
from repro.metrics.report import Table
from repro.sim.calendar import DAY, SimCalendar
from repro.sim.rng import RngRegistry
from repro.workloads.cloud import QARNOT_2016_CAMPAIGN, RenderCampaign

CAL = SimCalendar()


def season_run(month: int, label: str, rows: Table) -> None:
    mw = DF3Middleware(
        MiddlewareConfig(
            n_districts=2, buildings_per_district=2, rooms_per_building=3,
            dc_nodes=8, seed=9, start_time=CAL.month_start(month) + 9 * DAY,
            enable_filler=False,
        )
    )
    t0 = mw.engine.now
    campaign = RenderCampaign(
        RngRegistry(99).stream(f"render-{month}"),
        scale=2e-5, duration_s=1.5 * DAY,
    )
    frames = campaign.generate(t0)
    mw.inject(frames)
    mw.run_until(t0 + 4 * DAY)
    done = mw.completed_cloud()
    on_heaters = sum(1 for r in done if r.executed_on.startswith("district"))
    on_dc = sum(1 for r in done if r.executed_on == "dc")
    rows.add_row(
        label, len(frames), len(done), on_heaters, on_dc,
        round(mw.ledger.useful_heat_j / 3.6e6, 1),
    )


def main() -> None:
    stats = QARNOT_2016_CAMPAIGN
    print(f"2016 campaign: {stats.users} users, {stats.frames} frames, "
          f"{stats.total_core_hours:.0f} core-hours "
          f"(≈ {stats.mean_core_hours_per_frame:.1f} core-hours/frame); "
          "replaying a 2e-5 slice\n")
    table = Table(
        ["season", "frames", "completed", "on_heaters", "on_datacenter", "useful_heat_kwh"],
        title="Render campaign placement across seasons (hybrid infrastructure, §III-A)",
    )
    season_run(1, "January", table)
    season_run(7, "July", table)
    print(table.render())
    print("\nwinter frames heat homes; summer frames migrate to the datacenter —"
          "\nthe §IV seasonality that makes DF pricing a research field")


if __name__ == "__main__":
    main()
