"""Edge ML in a smart building: audio alarm detection on Q.rads.

Reproduces the scenario of the paper's ref [11] (Durand, Ngoko & Cérin 2017):
microphones around a building stream one-second audio frames; each frame gets
a near-real-time inference on the building's digital heaters; rare positives
trigger a heavier confirmation pass.  The building's Q.rad sensor suites also
publish their environmental readings.

Run:  python examples/smart_building_alarms.py
"""

from repro.core.middleware import DF3Middleware, MiddlewareConfig
from repro.core.scheduling.base import SaturationPolicy
from repro.hardware.sensors import SensorSuite
from repro.metrics.latency import LatencyStats
from repro.sim.calendar import DAY, HOUR, SimCalendar
from repro.sim.rng import RngRegistry
from repro.workloads.alarms import AlarmStreamConfig, AlarmStreamGenerator


def main() -> None:
    start = SimCalendar().month_start(2)  # February: heaters are busy anyway
    mw = DF3Middleware(
        MiddlewareConfig(
            n_districts=1,
            buildings_per_district=1,
            rooms_per_building=4,
            saturation_policy=SaturationPolicy.PREEMPT,
            start_time=start,
            seed=3,
        )
    )
    rngs = RngRegistry(11)
    building_name = next(iter(mw.buildings))
    building = mw.buildings[building_name]

    # wire a sensor suite to each room's real simulated temperature
    suites = {}
    for room in building.rooms:
        idx = room.index
        suites[room.name] = SensorSuite.standard(
            rngs.stream(f"sensors-{room.name}"),
            room_temperature=lambda t, i=idx: float(building.temperatures[i]),
        )

    # two hours of the alarm-detection workload: 8 mics at 1 frame/s
    cfg = AlarmStreamConfig(n_devices=8, frame_period_s=1.0, alarm_rate_per_day=24.0)
    gen = AlarmStreamGenerator(rngs.stream("alarms"), source=building_name, config=cfg)
    window = 2 * HOUR
    inferences, confirmations = gen.generate(start + HOUR, start + HOUR + window)
    mw.inject(inferences)
    mw.inject(confirmations)
    mw.run_until(start + HOUR + window + 0.1 * HOUR)

    done = mw.completed_edge()
    inf_done = [r for r in done if r.cycles <= cfg.inference_megacycles * 1e6]
    conf_done = [r for r in done if r.cycles > cfg.inference_megacycles * 1e6]
    inf_stats = LatencyStats.from_requests(inf_done)
    print("=== in-situ alarm detection on digital heaters (ref [11]) ===")
    print(f"inference frames : {len(inf_done)}/{len(inferences)} served — {inf_stats}")
    if conf_done:
        conf_stats = LatencyStats.from_requests(conf_done)
        print(f"alarm confirms   : {len(conf_done)}/{len(confirmations)} — {conf_stats}")
    print(f"edge misses      : {mw.edge_deadline_miss_rate():.2%}")
    readings = suites[building.rooms[0].name].sample_all(mw.engine.now)
    pretty = ", ".join(f"{r.sensor}={r.value:g}" for r in readings)
    print(f"room-0 sensors   : {pretty}")
    print(f"room comfort     : {mw.comfort.result()}")


if __name__ == "__main__":
    main()
