"""District heating + compute capacity across a year.

Samples every month of the year with the full DF3 stack (heaters and a
digital boiler per district), prints the seasonal capacity curve and the
seasonal spot prices of §IV, and fits the §III-C thermosensitivity predictor
on the observed demand.

Run:  python examples/district_heating_year.py
"""

import numpy as np

from repro.core.prediction import ThermosensitivityModel
from repro.core.pricing import SeasonalPricing
from repro.core.middleware import DF3Middleware, MiddlewareConfig
from repro.metrics.report import Table
from repro.sim.calendar import DAY, MONTH_LENGTHS, SimCalendar, month_name

CAL = SimCalendar()


def main() -> None:
    sample_days = 1.0
    capacity = {}
    observations = []  # (outdoor temp, authorized power)
    for month in range(1, 13):
        mw = DF3Middleware(
            MiddlewareConfig(
                n_districts=2, buildings_per_district=2, rooms_per_building=3,
                boilers_per_district=1, seed=5,
                start_time=CAL.month_start(month) + 9 * DAY,
                thermal_tick_s=600.0,
            )
        )
        t0 = mw.engine.now
        while mw.engine.now < t0 + sample_days * DAY:
            mw.run_until(mw.engine.now + 6 * 3600.0)
            demand = sum(
                float(b.heat_demand_w(mw.engine.now).sum())
                for b in mw.buildings.values()
            )
            observations.append(
                (mw.weather.outdoor_temperature(mw.engine.now), demand)
            )
        sampled = mw.smartgrid.monthly_capacity_core_hours().get(month, 0.0)
        capacity[month] = sampled * MONTH_LENGTHS[month - 1] / sample_days

    pricing = SeasonalPricing(capacity)
    table = Table(["month", "capacity_core_hours", "spot_eur_per_core_hour"],
                  title="Year of DF3 capacity (heaters + boilers) and §IV spot prices")
    for m in range(1, 13):
        table.add_row(month_name(m), round(capacity[m]), round(pricing.spot_price(m), 4))
    print(table.render())
    print(f"winter/summer capacity ratio: {pricing.winter_summer_ratio():.2f}")

    temps = np.array([o[0] for o in observations])
    demand = np.array([max(o[1], 0.0) for o in observations])
    model = ThermosensitivityModel()
    sens, base = model.fit(temps, demand)
    print(f"\nthermosensitivity fit: {sens:.0f} W/°C below {base:.1f} °C "
          f"(R² = {model.r2:.3f}) — the smart-grid manager's forecast model")


if __name__ == "__main__":
    main()
