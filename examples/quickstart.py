"""Quickstart: a DF3 city serving all three flows for one winter day.

Builds the smallest interesting deployment — two districts of Q.rad-heated
buildings plus a remote datacenter — injects heating, edge and cloud traffic,
and prints what the middleware achieved on each flow.

Run:  python examples/quickstart.py
"""

from repro.core.middleware import DF3Middleware, MiddlewareConfig
from repro.core.scheduling.base import SaturationPolicy
from repro.metrics.latency import LatencyStats
from repro.sim.calendar import DAY, SimCalendar
from repro.sim.rng import RngRegistry
from repro.workloads.cloud import CloudJobConfig, CloudJobGenerator
from repro.workloads.edge import EdgeWorkloadConfig, EdgeWorkloadGenerator
from repro.workloads.heating import HeatingBehavior, HeatingRequestGenerator


def main() -> None:
    start = SimCalendar().month_start(1) + 9 * DAY  # a January day
    mw = DF3Middleware(
        MiddlewareConfig(
            n_districts=2,
            buildings_per_district=2,
            rooms_per_building=3,
            saturation_policy=SaturationPolicy.PREEMPT,
            start_time=start,
            seed=1,
        )
    )
    rngs = RngRegistry(2024)

    # flow 1: hosts set their comfort targets
    heating = []
    for bname, building in mw.buildings.items():
        gen = HeatingRequestGenerator(
            rngs.stream(f"heat-{bname}"),
            rooms=[r.name for r in building.rooms],
            behavior=HeatingBehavior.INCENTIVIZED,
        )
        heating += gen.generate(start, start + DAY)

    # flow 2: Internet/DCC batch jobs
    cloud = CloudJobGenerator(
        rngs.stream("cloud"), CloudJobConfig(rate_per_hour=12.0)
    ).generate(start, start + DAY)

    # flow 3: building IoT edge requests
    edge = []
    for bname in mw.buildings:
        gen = EdgeWorkloadGenerator(
            rngs.stream(f"edge-{bname}"), source=bname,
            config=EdgeWorkloadConfig(rate_per_hour=50.0),
        )
        edge += gen.generate(start, start + DAY)

    mw.inject(heating)
    mw.inject(cloud)
    mw.inject(edge)
    mw.run_until(start + 1.2 * DAY)

    comfort = mw.comfort.result()
    edge_stats = LatencyStats.from_requests(mw.completed_edge(), mw.expired_edge())
    print("=== DF3 quickstart: one January day, 12 Q.rads, 3 flows ===")
    print(f"heating : {len(heating)} requests; rooms in comfort band "
          f"{comfort.time_in_band:.0%} of the time (mean {comfort.mean_temp_c:.1f} °C)")
    print(f"edge    : {len(mw.completed_edge())}/{len(edge)} served; {edge_stats}")
    print(f"cloud   : {len(mw.completed_cloud())}/{len(cloud)} batch jobs completed")
    print(f"energy  : fleet drew {mw.fleet_energy_j()/3.6e6:.1f} kWh, "
          f"{mw.ledger.useful_heat_j/3.6e6:.1f} kWh delivered as requested heat")
    print(f"filler  : {mw.filler_completed} opportunistic chunks kept rooms warm")


if __name__ == "__main__":
    main()
