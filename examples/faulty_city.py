"""Resilience demo: a DF3 city survives crashes, a master outage and a WAN cut.

The §IV resource-oriented-computing argument, live: heat regulation is local
to each server, so comfort — the "basic service delivered by the resources" —
survives every central-point failure, while the edge flow degrades only in
the district whose master is down.

Run:  python examples/faulty_city.py
"""

from repro.core.faults import FaultInjector
from repro.core.middleware import DF3Middleware, MiddlewareConfig
from repro.core.requests import CloudRequest
from repro.core.scheduling.base import SaturationPolicy
from repro.sim.calendar import DAY, HOUR, SimCalendar
from repro.sim.rng import RngRegistry
from repro.workloads.edge import EdgeWorkloadConfig, EdgeWorkloadGenerator


def main() -> None:
    start = SimCalendar().month_start(12) + 4 * DAY  # a December day
    mw = DF3Middleware(
        MiddlewareConfig(n_districts=2, buildings_per_district=2,
                         rooms_per_building=3, seed=13, start_time=start,
                         saturation_policy=SaturationPolicy.PREEMPT)
    )
    fi = FaultInjector(mw)
    rngs = RngRegistry(77)

    edge = []
    for bname in mw.buildings:
        gen = EdgeWorkloadGenerator(rngs.stream(f"edge-{bname}"), source=bname,
                                    config=EdgeWorkloadConfig(rate_per_hour=80.0))
        edge += gen.generate(start, start + DAY)
    cloud = [CloudRequest(cycles=1.5e14, time=start + 7 * HOUR, cores=4)
             for _ in range(4)]
    mw.inject(edge)
    mw.inject(cloud)

    victims = []

    def crash() -> None:
        names = sorted({r.executed_on for r in cloud if r.executed_on})
        victims.extend(names[:2])
        for v in victims:
            n = fi.crash_server(v)
            print(f"  [{(mw.engine.now-start)/HOUR:04.1f}h] CRASH {v} ({n} tasks salvaged)")

    mw.engine.schedule_at(start + 9 * HOUR, crash)
    mw.engine.schedule_at(start + 12 * HOUR,
                          lambda: [fi.recover_server(v) for v in victims])
    mw.engine.schedule_at(start + 14 * HOUR, lambda: fi.fail_master(0))
    mw.engine.schedule_at(start + 16 * HOUR, lambda: fi.restore_master(0))
    mw.engine.schedule_at(start + 18 * HOUR, fi.partition_wan)
    mw.engine.schedule_at(start + 19 * HOUR, fi.heal_wan)

    print("=== a faulty December day in the DF3 city ===")
    mw.run_until(start + DAY + HOUR)

    for line in fi.log.events:
        print(" ", line)
    done = [r for r in edge if r.status.value == "completed" and r.deadline_met()]
    comfort = mw.comfort.result()
    print(f"\nedge served in deadline : {len(done)}/{len(edge)} "
          f"({len(done)/len(edge):.1%}) despite the fault schedule")
    print(f"cloud jobs completed    : "
          f"{sum(1 for r in cloud if r.status.value == 'completed')}/{len(cloud)} "
          f"(crashed work salvaged: {fi.log.tasks_salvaged})")
    print(f"heat (the §IV claim)    : comfort in-band {comfort.time_in_band:.0%}, "
          f"mean {comfort.mean_temp_c:.1f} °C — unaffected by any central failure")


if __name__ == "__main__":
    main()
